package kernels

import (
	"fmt"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// nwBlock is the Rodinia BLOCK_SIZE: thread blocks have only 16 threads,
// trading warp utilization for occupancy (§6.1.2: "For maximum occupancy,
// each TB only has 16 threads. This leads to idling of some threads in the
// warps.").
const nwBlock = 16

// nwAlphabet is the amino-acid alphabet size of the similarity table
// (BLOSUM-like, 24 symbols in Rodinia's blosum62).
const nwAlphabet = 24

// NeedlemanWunsch is the Rodinia NW sequence-alignment benchmark: fill an
// (n+1)×(n+1) score matrix with the global-alignment dynamic program,
// processing 16×16 tiles in parallel along anti-diagonal strips. Two
// kernels traverse the matrix: kernel 1 from the top-left and kernel 2 to
// the bottom-right, launched once per strip (2·n/16 − 1 launches total).
type NeedlemanWunsch struct {
	// SeqLen is the sequence length n; must be a positive multiple of 16.
	SeqLen int
	// Penalty is the gap penalty (Rodinia default 10).
	Penalty int32
	// Seed generates the sequences and similarity table.
	Seed uint64

	seq1, seq2 []int32 // 1-based: seq[i] for i in [1, n]
	blosum     [nwAlphabet][nwAlphabet]int32
	score      []int32 // (n+1)×(n+1) row-major input_itemsets
}

// Name implements profiler.Workload.
func (nw *NeedlemanWunsch) Name() string { return "needle" }

// Characteristics implements profiler.Workload.
func (nw *NeedlemanWunsch) Characteristics() map[string]float64 {
	return map[string]float64{"size": float64(nw.SeqLen)}
}

// InputSeed implements profiler.InputSeeded: repeated runs at the same
// size but with fresh sequences keep distinct noise identities.
func (nw *NeedlemanWunsch) InputSeed() uint64 { return nw.Seed }

// Score returns the score matrix (valid after a fully-simulated run).
func (nw *NeedlemanWunsch) Score() []int32 { return nw.score }

// Release drops the O(n²) score matrix so sweeps do not accumulate it.
func (nw *NeedlemanWunsch) Release() { nw.score, nw.seq1, nw.seq2 = nil, nil, nil }

// ref returns the similarity score of matrix cell (i, j), both 1-based —
// Rodinia precomputes this as the "reference" matrix; we evaluate it
// lazily to avoid the O(n²) allocation.
func (nw *NeedlemanWunsch) ref(i, j int) int32 {
	return nw.blosum[nw.seq1[i]][nw.seq2[j]]
}

// CPUNeedlemanWunsch fills the score matrix sequentially — the reference
// for functional verification.
func (nw *NeedlemanWunsch) CPUNeedlemanWunsch() []int32 {
	n := nw.SeqLen
	cols := n + 1
	out := make([]int32, cols*cols)
	for i := 0; i < cols; i++ {
		out[i*cols] = int32(-i) * nw.Penalty
		out[i] = int32(-i) * nw.Penalty
	}
	for i := 1; i < cols; i++ {
		for j := 1; j < cols; j++ {
			out[i*cols+j] = max3(
				out[(i-1)*cols+j-1]+nw.ref(i, j),
				out[i*cols+j-1]-nw.Penalty,
				out[(i-1)*cols+j]-nw.Penalty,
			)
		}
	}
	return out
}

func max3(a, b, c int32) int32 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}

// Plan implements profiler.Workload.
func (nw *NeedlemanWunsch) Plan(dev *gpusim.Device) ([]profiler.Launch, error) {
	if nw.SeqLen <= 0 || nw.SeqLen%nwBlock != 0 {
		return nil, fmt.Errorf("kernels: NW sequence length %d must be a positive multiple of %d", nw.SeqLen, nwBlock)
	}
	if nw.Penalty == 0 {
		nw.Penalty = 10
	}
	n := nw.SeqLen
	cols := n + 1

	nw.seq1 = make([]int32, cols)
	nw.seq2 = make([]int32, cols)
	for i := 1; i < cols; i++ {
		nw.seq1[i] = randomI32(nw.Seed, uint64(i), nwAlphabet)
		nw.seq2[i] = randomI32(nw.Seed^0x5e92, uint64(i), nwAlphabet)
	}
	for a := 0; a < nwAlphabet; a++ {
		for b := 0; b < nwAlphabet; b++ {
			nw.blosum[a][b] = randomI32(nw.Seed^0xb105, uint64(a*nwAlphabet+b), 21) - 10
		}
	}
	nw.score = make([]int32, cols*cols)
	for i := 0; i < cols; i++ {
		nw.score[i*cols] = int32(-i) * nw.Penalty
		nw.score[i] = int32(-i) * nw.Penalty
	}

	blockWidth := n / nwBlock
	var launches []profiler.Launch
	mk := func(label string, strip int, blocks int, topLeft bool) profiler.Launch {
		return profiler.Launch{
			Label: label,
			Config: gpusim.LaunchConfig{
				GridDimX: blocks, GridDimY: 1,
				BlockDimX: nwBlock, BlockDimY: 1,
				RegsPerThread: 24,
				// temp[17][17] + ref[16][16] ints.
				SharedMemPerBlock: 4 * ((nwBlock+1)*(nwBlock+1) + nwBlock*nwBlock),
			},
			Kernel: nw.kernel(strip, blockWidth, topLeft),
		}
	}
	for i := 1; i <= blockWidth; i++ {
		launches = append(launches, mk("needle_cuda_shared_1", i, i, true))
	}
	for i := blockWidth - 1; i >= 1; i-- {
		launches = append(launches, mk("needle_cuda_shared_2", i, i, false))
	}
	return launches, nil
}

// kernel processes one 16×16 tile per block along anti-diagonal strip i.
// Each block runs a single 16-thread (half-empty) warp.
func (nw *NeedlemanWunsch) kernel(strip, blockWidth int, topLeft bool) gpusim.KernelFunc {
	cols := nw.SeqLen + 1
	penalty := nw.Penalty
	score := nw.score
	return func(w *gpusim.Warp) {
		bx, _ := w.BlockIdx()
		var bIdxX, bIdxY int
		if topLeft {
			bIdxX = bx
			bIdxY = strip - 1 - bx
		} else {
			bIdxX = bx + blockWidth - strip
			bIdxY = blockWidth - bx - 1
		}

		active := w.ValidMask() // lanes 0–15
		tid := laneInts(w.LinearTID)

		// Cell indices as in Rodinia.
		base := cols*nwBlock*bIdxY + nwBlock*bIdxX
		indexNW := base
		indexN := laneInts(func(l int) int { return base + tid[l] + 1 })
		indexW := base + cols
		index := laneInts(func(l int) int { return base + cols + 1 + tid[l] })

		// temp[17][17] and ref[16][16] in shared memory.
		temp := w.SharedI32(nwTempSlot, (nwBlock+1)*(nwBlock+1))
		refS := w.SharedI32(nwRefSlot, nwBlock*nwBlock)
		w.IntOps(active, 6) // index arithmetic

		// temp[0][0] = input[index_nw] (lane 0 only).
		lane0 := active & gpusim.MaskFirstN(1)
		w.Branch(active, lane0)
		nwIdx := laneInts(func(int) int { return indexNW })
		nwAddrs := addrs4(baseScore, &nwIdx)
		w.GlobalLoad(lane0, &nwAddrs, 4)
		temp[0] = score[indexNW]
		var zeroOffs [gpusim.WarpSize]uint32
		w.SharedStore(lane0, &zeroOffs)

		// ref_s[ty][tid] = reference[index + cols*ty]: 16 coalesced rows.
		for ty := 0; ty < nwBlock; ty++ {
			rIdx := laneInts(func(l int) int { return index[l] + cols*ty })
			rAddrs := addrs4(baseRef, &rIdx)
			w.GlobalLoad(active, &rAddrs, 4)
			sIdx := laneInts(func(l int) int { return ty*nwBlock + tid[l] })
			sOffs := offs4(&sIdx)
			for l := 0; l < gpusim.WarpSize; l++ {
				if active.Active(l) {
					// Matrix cell (row, col) of this lane's ref entry.
					row := bIdxY*nwBlock + ty + 1
					col := bIdxX*nwBlock + tid[l] + 1
					refS[sIdx[l]] = nw.ref(row, col)
				}
			}
			w.SharedStore(active, &sOffs)
		}
		w.Sync()

		// temp[tid+1][0] = input[index_w + cols*tid]: strided, uncoalesced.
		wIdx := laneInts(func(l int) int { return indexW + cols*tid[l] })
		wAddrs := addrs4(baseScore, &wIdx)
		w.GlobalLoad(active, &wAddrs, 4)
		wOff := laneInts(func(l int) int { return (tid[l] + 1) * (nwBlock + 1) })
		wOffs := offs4(&wOff)
		for l := 0; l < gpusim.WarpSize; l++ {
			if active.Active(l) {
				temp[wOff[l]] = score[wIdx[l]]
			}
		}
		w.SharedStore(active, &wOffs)
		w.Sync()

		// temp[0][tid+1] = input[index_n]: coalesced north row.
		nAddrs := addrs4(baseScore, &indexN)
		w.GlobalLoad(active, &nAddrs, 4)
		nOff := laneInts(func(l int) int { return tid[l] + 1 })
		nOffs := offs4(&nOff)
		for l := 0; l < gpusim.WarpSize; l++ {
			if active.Active(l) {
				temp[nOff[l]] = score[indexN[l]]
			}
		}
		w.SharedStore(active, &nOffs)
		w.Sync()

		// Forward wavefront over the tile's anti-diagonals.
		for m := 0; m < nwBlock; m++ {
			step := active & gpusim.MaskWhere(func(l int) bool { return tid[l] <= m })
			nw.dpStep(w, temp, refS, active, step, tid, func(l int) (x, y int) {
				return tid[l] + 1, m - tid[l] + 1
			}, penalty)
			w.Sync()
		}
		// Backward wavefront.
		for m := nwBlock - 2; m >= 0; m-- {
			step := active & gpusim.MaskWhere(func(l int) bool { return tid[l] <= m })
			nw.dpStep(w, temp, refS, active, step, tid, func(l int) (x, y int) {
				return tid[l] + nwBlock - m, nwBlock - tid[l]
			}, penalty)
			w.Sync()
		}

		// Write the tile back: input[index + cols*ty] = temp[ty+1][tid+1].
		for ty := 0; ty < nwBlock; ty++ {
			oIdx := laneInts(func(l int) int { return index[l] + cols*ty })
			oAddrs := addrs4(baseScore, &oIdx)
			tOff := laneInts(func(l int) int { return (ty+1)*(nwBlock+1) + tid[l] + 1 })
			tOffs := offs4(&tOff)
			w.SharedLoad(active, &tOffs)
			w.GlobalStore(active, &oAddrs, 4)
			for l := 0; l < gpusim.WarpSize; l++ {
				if active.Active(l) {
					score[oIdx[l]] = temp[tOff[l]]
				}
			}
		}
	}
}

// dpStep performs one anti-diagonal step: for each active lane, cell
// (t_y, t_x) gets max(diag+ref, west−penalty, north−penalty).
func (nw *NeedlemanWunsch) dpStep(w *gpusim.Warp, temp, refS []int32, active, step gpusim.Mask,
	tid [gpusim.WarpSize]int, cell func(l int) (x, y int), penalty int32) {
	w.IntOps(active, 2) // diagonal index arithmetic
	w.Branch(active, step)
	if step == 0 {
		return
	}
	const tw = nwBlock + 1
	var diag, west, north, self, refOff [gpusim.WarpSize]int
	for l := 0; l < gpusim.WarpSize; l++ {
		if !step.Active(l) {
			continue
		}
		x, y := cell(l)
		diag[l] = (y-1)*tw + (x - 1)
		west[l] = y*tw + (x - 1)
		north[l] = (y-1)*tw + x
		self[l] = y*tw + x
		refOff[l] = (y-1)*nwBlock + (x - 1)
	}
	dOffs := offs4(&diag)
	wOffs := offs4(&west)
	nOffs := offs4(&north)
	sOffs := offs4(&self)
	rOffs := offs4(&refOff)
	w.SharedLoad(step, &dOffs)
	w.SharedLoad(step, &rOffs)
	w.SharedLoad(step, &wOffs)
	w.SharedLoad(step, &nOffs)
	w.IntOps(step, 4) // two subtractions, two max ops
	for l := 0; l < gpusim.WarpSize; l++ {
		if step.Active(l) {
			temp[self[l]] = max3(
				temp[diag[l]]+refS[refOff[l]],
				temp[west[l]]-penalty,
				temp[north[l]]-penalty,
			)
		}
	}
	w.SharedStore(step, &sOffs)
}
