package kernels

import (
	"fmt"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// Transpose tile geometry, as in the CUDA SDK transpose sample.
const (
	transTile = 32 // TILE_DIM
	transRows = 8  // BLOCK_ROWS: each thread moves TILE_DIM/BLOCK_ROWS elements
)

// Transpose is the CUDA SDK matrix-transpose optimization study: three
// variants of out = inᵀ for an n×n float32 matrix, each fixing the
// previous one's bottleneck — the same pedagogical ladder as the reduction
// benchmark, and a natural test of BlackForest's bottleneck analysis:
//
//	0 — naive: coalesced reads, strided (uncoalesced) writes
//	1 — shared-memory tiles: both sides coalesced, but the 32×32 tile
//	    makes column reads hit a single bank (32-way conflicts)
//	2 — padded tiles (32×33): conflict-free
type Transpose struct {
	// Variant selects the kernel, 0–2.
	Variant int
	// N is the matrix dimension; must be a multiple of 32.
	N int
	// Rows is BLOCK_ROWS: the block is (32, Rows) threads and each thread
	// moves 32/Rows elements of its tile. 0 selects the SDK default of 8;
	// the optimizer searches other divisors of 32.
	Rows int
	// Seed generates the input.
	Seed uint64

	in, out []float32
}

// Name implements profiler.Workload.
func (t *Transpose) Name() string { return fmt.Sprintf("transpose%d", t.Variant) }

// Characteristics implements profiler.Workload. A non-default BLOCK_ROWS
// (the optimizer's block-geometry transformation) joins the identity so
// transformed runs never share a noise seed or cache key with the
// baseline; at the default it is omitted, keeping every existing run's
// identity — and therefore every existing profile — bit-identical.
func (t *Transpose) Characteristics() map[string]float64 {
	c := map[string]float64{"size": float64(t.N)}
	if t.Rows != 0 && t.Rows != transRows {
		c["block_rows"] = float64(t.Rows)
	}
	return c
}

// Params implements the optimizer's Tunable contract: the launch-config
// parameters a search may transform, at their effective values.
func (t *Transpose) Params() map[string]int {
	r := t.Rows
	if r == 0 {
		r = transRows
	}
	return map[string]int{"block_rows": r}
}

// ParamDomain implements the optimizer's Tunable contract.
func (t *Transpose) ParamDomain(name string) []int {
	if name == "block_rows" {
		return []int{2, 4, 8, 16, 32}
	}
	return nil
}

// WithParam implements the optimizer's Tunable contract: a fresh,
// unplanned copy of the workload with one parameter changed.
func (t *Transpose) WithParam(name string, value int) (profiler.Workload, error) {
	if name != "block_rows" {
		return nil, fmt.Errorf("kernels: transpose has no parameter %q", name)
	}
	return &Transpose{Variant: t.Variant, N: t.N, Rows: value, Seed: t.Seed}, nil
}

// InputSeed implements profiler.InputSeeded: repeated runs at the same
// size but with fresh inputs keep distinct noise identities.
func (t *Transpose) InputSeed() uint64 { return t.Seed }

// In and Out return the input and output matrices (valid after Plan; Out
// is filled by a fully-simulated run).
func (t *Transpose) In() []float32  { return t.in }
func (t *Transpose) Out() []float32 { return t.out }

// Release drops the matrices so sweeps do not accumulate them.
func (t *Transpose) Release() { t.in, t.out = nil, nil }

// CPUTranspose is the reference row-major transpose.
func CPUTranspose(in []float32, n int) []float32 {
	out := make([]float32, n*n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			out[x*n+y] = in[y*n+x]
		}
	}
	return out
}

// Plan implements profiler.Workload.
func (t *Transpose) Plan(dev *gpusim.Device) ([]profiler.Launch, error) {
	if t.Variant < 0 || t.Variant > 2 {
		return nil, fmt.Errorf("kernels: transpose variant %d out of range [0,2]", t.Variant)
	}
	if t.N <= 0 || t.N%transTile != 0 {
		return nil, fmt.Errorf("kernels: transpose size %d must be a positive multiple of %d", t.N, transTile)
	}
	if t.Rows == 0 {
		t.Rows = transRows
	}
	if t.Rows < 1 || t.Rows > transTile || transTile%t.Rows != 0 {
		return nil, fmt.Errorf("kernels: transpose block rows %d must divide %d", t.Rows, transTile)
	}
	n := t.N
	t.in = make([]float32, n*n)
	t.out = make([]float32, n*n)
	for i := range t.in {
		t.in[i] = randomF32(t.Seed, uint64(i))
	}
	shared := 0
	if t.Variant > 0 {
		width := transTile
		if t.Variant == 2 {
			width = transTile + 1
		}
		shared = 4 * transTile * width
	}
	cfg := gpusim.LaunchConfig{
		GridDimX: n / transTile, GridDimY: n / transTile,
		BlockDimX: transTile, BlockDimY: t.Rows,
		RegsPerThread:     14,
		SharedMemPerBlock: shared,
	}
	return []profiler.Launch{{Label: t.Name(), Config: cfg, Kernel: t.kernel()}}, nil
}

// kernel moves one 32×32 tile per block; each of the `rows` warps covers
// one row-slice and iterates 32/rows row offsets (ty, ty+rows, …).
func (t *Transpose) kernel() gpusim.KernelFunc {
	n := t.N
	rows := t.Rows
	in, out := t.in, t.out
	variant := t.Variant
	tileW := transTile // words per tile row in shared memory
	if variant == 2 {
		tileW = transTile + 1
	}
	return func(w *gpusim.Warp) {
		bx, by := w.BlockIdx()
		full := w.ValidMask()
		ty := w.WarpID() // blockDim (32,rows): warp k is thread row k

		if variant == 0 {
			// Naive: out[x*n + y] = in[y*n + x].
			w.IntOps(full, 4)
			for j := 0; j < transTile/rows; j++ {
				row := by*transTile + ty + j*rows
				rIdx := laneInts(func(l int) int { return row*n + bx*transTile + l })
				rAddrs := addrs4(baseA, &rIdx)
				w.GlobalLoad(full, &rAddrs, 4)
				wIdx := laneInts(func(l int) int { return (bx*transTile+l)*n + row })
				wAddrs := addrs4(baseB, &wIdx)
				w.GlobalStore(full, &wAddrs, 4)
				for l := 0; l < gpusim.WarpSize; l++ {
					out[wIdx[l]] = in[rIdx[l]]
				}
			}
			return
		}

		tile := w.SharedF32(transposeTileSlot, transTile*tileW)
		w.IntOps(full, 4)
		// Load phase: tile[(ty+j*8)][tx] = in[(by*32+ty+j*8)*n + bx*32+tx].
		for j := 0; j < transTile/rows; j++ {
			row := by*transTile + ty + j*rows
			rIdx := laneInts(func(l int) int { return row*n + bx*transTile + l })
			rAddrs := addrs4(baseA, &rIdx)
			w.GlobalLoad(full, &rAddrs, 4)
			sIdx := laneInts(func(l int) int { return (ty+j*rows)*tileW + l })
			sOffs := offs4(&sIdx)
			for l := 0; l < gpusim.WarpSize; l++ {
				tile[sIdx[l]] = in[rIdx[l]]
			}
			w.SharedStore(full, &sOffs)
		}
		w.Sync()
		// Store phase: out[(bx*32+ty+j*8)*n + by*32+tx] = tile[tx][ty+j*8]
		// — the column read that conflicts without padding.
		for j := 0; j < transTile/rows; j++ {
			col := ty + j*rows
			sIdx := laneInts(func(l int) int { return l*tileW + col })
			sOffs := offs4(&sIdx)
			w.SharedLoad(full, &sOffs)
			wIdx := laneInts(func(l int) int { return (bx*transTile+col)*n + by*transTile + l })
			wAddrs := addrs4(baseB, &wIdx)
			w.GlobalStore(full, &wAddrs, 4)
			for l := 0; l < gpusim.WarpSize; l++ {
				out[wIdx[l]] = tile[sIdx[l]]
			}
		}
	}
}
