package kernels

import (
	"testing"
)

// These tests pin the kernels' counter totals to closed-form expressions
// derived from the launch geometry, complementing the signature tests
// (which only check qualitative orderings). A full simulation with noise
// disabled makes every count exact, so any drift in the coalescer, the
// bank-conflict model, or a kernel's instruction stream shows up as an
// off-by-N here rather than as a silent change in the training data.

func TestMatMulCounterInvariants(t *testing.T) {
	// Tiled matmul with b=16: each block holds b² threads (8 full warps),
	// and each warp walks n/b tiles issuing 2 global loads, 2 shared
	// stores, and 2b shared loads per tile, then 1 global store.
	for _, n := range []int{32, 64, 96} {
		m := runFull(t, "GTX580", &MatMul{N: n, Seed: uint64(n)}).Metrics
		tiles := float64(n / 16)
		warps := float64(n*n) / 32

		if got, want := m["gld_request"], 2*warps*tiles; got != want {
			t.Errorf("n=%d: gld_request = %v, want %v (= n³/256)", n, got, want)
		}
		if got, want := m["gst_request"], warps; got != want {
			t.Errorf("n=%d: gst_request = %v, want %v (one per warp)", n, got, want)
		}
		if got, want := m["shared_store"], 2*warps*tiles; got != want {
			t.Errorf("n=%d: shared_store = %v, want %v", n, got, want)
		}
		if got, want := m["shared_load"], 32*warps*tiles; got != want {
			t.Errorf("n=%d: shared_load = %v, want %v (2b per k-loop tile)", n, got, want)
		}
		// The tile fills and the k-loop reads are conflict-free: tile rows
		// map to distinct banks and same-word reads broadcast.
		if got := m["l1_shared_bank_conflict"]; got != 0 {
			t.Errorf("n=%d: l1_shared_bank_conflict = %v, want 0", n, got)
		}
		// Each warp stores two 64-byte rows of C in different 128-byte
		// lines (n is a multiple of 32, so rows are line-aligned).
		if got, want := m["global_store_transaction"], 2*warps; got != want {
			t.Errorf("n=%d: global_store_transaction = %v, want %v", n, got, want)
		}
		// Each load request likewise touches exactly two L1 lines.
		if got, want := m["l1_global_load_hit"]+m["l1_global_load_miss"], 2*m["gld_request"]; got != want {
			t.Errorf("n=%d: L1 accesses = %v, want %v (2 lines per request)", n, got, want)
		}
	}
}

// reductionLaunchTotals replays blocksFor over the recursive launch chain
// of variants 0–2 and returns Σ⌈count/32⌉ (warps with a live global load)
// and Σblocks.
func reductionLaunchTotals(n, blockSize int) (loadWarps, blocks int) {
	for count := n; count > 1; {
		b := ceilDiv(count, blockSize)
		loadWarps += ceilDiv(count, 32)
		blocks += b
		count = b
	}
	return loadWarps, blocks
}

func TestReductionCounterInvariants(t *testing.T) {
	// Variants 0–2 share the launch chain: one element per thread, grid
	// ⌈count/blockSize⌉, recursing until one value remains. Global traffic
	// is the same for all three; what differs is the shared-memory replay
	// behavior the paper's §5 narrative hinges on.
	for _, variant := range []int{0, 1, 2} {
		for _, n := range []int{1000, 4096} {
			r := &Reduction{Variant: variant, N: n, BlockSize: 256, Seed: uint64(n)}
			prof := runFull(t, "GTX580", r)
			m := prof.Metrics
			loadWarps, blocks := reductionLaunchTotals(n, 256)

			if got, want := m["gld_request"], float64(loadWarps); got != want {
				t.Errorf("reduce%d n=%d: gld_request = %v, want %v (Σ⌈count/32⌉)", variant, n, got, want)
			}
			// One lane-0 store per block writes the partial sum.
			if got, want := m["gst_request"], float64(blocks); got != want {
				t.Errorf("reduce%d n=%d: gst_request = %v, want %v (one per block)", variant, n, got, want)
			}
			want := 0.0
			if variant == 1 {
				// Strided indexing: per 256-thread block the eight loop
				// iterations conflict with degrees 2,4,8,8,8,4,2,1 on each
				// of 4,2,1,1,1,1,1,1 active warps × 3 shared instructions:
				// 3·(4·1 + 2·3 + 7 + 7 + 7 + 3 + 1 + 0) = 105 replays.
				want = 105 * float64(blocks)
			}
			if got := m["l1_shared_bank_conflict"]; got != want {
				t.Errorf("reduce%d n=%d: l1_shared_bank_conflict = %v, want %v", variant, n, got, want)
			}
		}
	}
}

func TestReductionSharedTrafficInvariants(t *testing.T) {
	// For the sequential-addressing kernel the per-block shared traffic is
	// a pure function of the block size: 12 live warp-iterations of the
	// halving loop (2 loads + 1 store each) over the 8 loads of the fill
	// phase plus the lane-0 readback.
	for _, n := range []int{1000, 4096} {
		m := runFull(t, "GTX580", &Reduction{Variant: 2, N: n, BlockSize: 256, Seed: 3}).Metrics
		_, blocks := reductionLaunchTotals(n, 256)
		if got, want := m["shared_load"], float64(25*blocks); got != want {
			t.Errorf("n=%d: shared_load = %v, want %v", n, got, want)
		}
		if got, want := m["shared_store"], float64(20*blocks); got != want {
			t.Errorf("n=%d: shared_store = %v, want %v", n, got, want)
		}
	}
}

func TestNWCounterInvariants(t *testing.T) {
	// NW tiles the (n+1)² matrix into (n/16)² blocks of one 16-thread
	// warp, visited once across the 2·(n/16)−1 diagonal strips. Per block:
	// 19 global loads (corner + 16 ref rows + west column + north row),
	// 16 row write-backs, 50 shared stores (19 fill + 31 wavefront steps)
	// and 140 shared loads (4·31 wavefront + 16 write-back reads).
	for _, n := range []int{64, 128} {
		prof := runFull(t, "GTX580", &NeedlemanWunsch{SeqLen: n, Seed: uint64(n)})
		m := prof.Metrics
		bw := n / 16
		blocks := float64(bw * bw)

		if got, want := prof.Launches, 2*bw-1; got != want {
			t.Errorf("n=%d: %d launches, want %d", n, got, want)
		}
		if got, want := m["gld_request"], 19*blocks; got != want {
			t.Errorf("n=%d: gld_request = %v, want %v", n, got, want)
		}
		if got, want := m["gst_request"], 16*blocks; got != want {
			t.Errorf("n=%d: gst_request = %v, want %v", n, got, want)
		}
		if got, want := m["shared_store"], 50*blocks; got != want {
			t.Errorf("n=%d: shared_store = %v, want %v", n, got, want)
		}
		if got, want := m["shared_load"], 140*blocks; got != want {
			t.Errorf("n=%d: shared_load = %v, want %v", n, got, want)
		}
	}
}
