// Package kernels ports the paper's benchmark kernels to the gpusim SIMT
// API: the CUDA SDK parallel-reduction family (reduce0–reduce6), the CUDA
// SDK tiled matrix multiply, and the Rodinia Needleman-Wunsch sequence
// aligner. Each workload computes functionally correct results (verifiable
// against the CPU references in this package) while the simulator accounts
// the memory-system and instruction events behind the paper's counters.
package kernels

import (
	"blackforest/internal/gpusim"
)

// Address-space bases keep the synthetic byte addresses of distinct
// buffers from aliasing in the cache models. Each buffer gets a 1 GiB
// region, far larger than any modeled working set.
const (
	regionSize = 1 << 30
	baseInput  = 1 * regionSize
	baseOutput = 2 * regionSize
	baseA      = 3 * regionSize
	baseB      = 4 * regionSize
	baseC      = 5 * regionSize
	baseScore  = 6 * regionSize
	baseRef    = 7 * regionSize
	basePong   = 8 * regionSize
)

// laneInts precomputes per-lane int values from a function of the lane.
func laneInts(f func(lane int) int) [gpusim.WarpSize]int {
	var out [gpusim.WarpSize]int
	for lane := range out {
		out[lane] = f(lane)
	}
	return out
}

// addrs4 builds per-lane byte addresses base + 4·idx[lane].
func addrs4(base uint64, idx *[gpusim.WarpSize]int) [gpusim.WarpSize]uint64 {
	var out [gpusim.WarpSize]uint64
	for lane := range out {
		out[lane] = base + 4*uint64(idx[lane])
	}
	return out
}

// offs4 builds per-lane shared-memory byte offsets 4·word[lane].
func offs4(word *[gpusim.WarpSize]int) [gpusim.WarpSize]uint32 {
	var out [gpusim.WarpSize]uint32
	for lane := range out {
		out[lane] = uint32(4 * word[lane])
	}
	return out
}

// splitmix64 is a tiny deterministic hash used to generate workload input
// data without importing the stats package here.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// randomF32 returns a deterministic pseudo-random float32 in [0, 1).
func randomF32(seed, i uint64) float32 {
	return float32(splitmix64(seed^i*0x9e3779b97f4a7c15)>>40) / float32(1<<24)
}

// randomI32 returns a deterministic pseudo-random int32 in [0, n).
func randomI32(seed, i uint64, n int32) int32 {
	return int32(splitmix64(seed+i) % uint64(n))
}

// nextPow2 returns the smallest power of two ≥ v (v ≥ 1).
func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
