package kernels

import (
	"math"
	"testing"
)

// The optimizer's Tunable contract, restated structurally so this package
// can assert it without importing internal/optimize.
type tunable interface {
	Params() map[string]int
	ParamDomain(name string) []int
}

// TestTunableDomainsContainCurrent: every kernel's effective parameter
// values appear in their own domains (the search enumerates domains and
// skips the current value — a current value outside its domain could
// never be restored once left).
func TestTunableDomainsContainCurrent(t *testing.T) {
	subjects := []tunable{
		&MatMul{N: 256, Seed: 1},
		&Reduction{Variant: 6, N: 4096, BlockSize: 256, Seed: 1},
		&Transpose{Variant: 0, N: 256, Seed: 1},
		&Histogram{Variant: 1, N: 4096, Seed: 1},
	}
	for _, s := range subjects {
		for name, cur := range s.Params() {
			dom := s.ParamDomain(name)
			if len(dom) == 0 {
				t.Errorf("%T: parameter %q has an empty domain", s, name)
				continue
			}
			found := false
			for _, v := range dom {
				if v == cur {
					found = true
				}
			}
			if !found {
				t.Errorf("%T: current %s=%d not in domain %v", s, name, cur, dom)
			}
		}
	}
}

// TestWithParamDoesNotMutate: WithParam returns a fresh workload and
// leaves the receiver untouched (the incumbent must stay runnable after
// candidates are derived from it).
func TestWithParamDoesNotMutate(t *testing.T) {
	m := &MatMul{N: 256, Seed: 1}
	w, err := m.WithParam("tile", 32)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tile != 0 {
		t.Fatalf("receiver mutated: Tile = %d", m.Tile)
	}
	if w.(*MatMul).Tile != 32 {
		t.Fatalf("copy not transformed: Tile = %d", w.(*MatMul).Tile)
	}

	tr := &Transpose{Variant: 1, N: 256, Seed: 1}
	w2, err := tr.WithParam("block_rows", 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Rows != 0 || w2.(*Transpose).Rows != 4 {
		t.Fatalf("transpose WithParam: receiver Rows=%d, copy Rows=%d", tr.Rows, w2.(*Transpose).Rows)
	}
}

// TestWithParamRejectsUnknown: unknown parameters and illegal values
// error instead of silently passing through.
func TestWithParamRejectsUnknown(t *testing.T) {
	if _, err := (&MatMul{N: 256}).WithParam("bogus", 1); err == nil {
		t.Error("matmul accepted unknown parameter")
	}
	if _, err := (&MatMul{N: 100, Seed: 1}).WithParam("tile", 32); err == nil {
		t.Error("matmul accepted tile not dividing N")
	}
	if _, err := (&Transpose{Variant: 0, N: 256}).WithParam("tile", 32); err == nil {
		t.Error("transpose accepted unknown parameter")
	}
	if _, err := (&Histogram{Variant: 0, N: 256}).WithParam("skew", 1); err == nil {
		t.Error("histogram accepted unknown parameter")
	}
	if _, err := (&Reduction{Variant: 3, N: 4096}).WithParam("max_blocks", 128); err == nil {
		t.Error("reduction variant 3 accepted max_blocks (only the grid-strided variant 6 has it)")
	}
}

// TestTransposeBlockRowsFunctional: every legal BLOCK_ROWS geometry
// still computes the exact transpose, for all three variants.
func TestTransposeBlockRowsFunctional(t *testing.T) {
	for variant := 0; variant <= 2; variant++ {
		for _, rows := range []int{2, 4, 16, 32} {
			tr := &Transpose{Variant: variant, N: 128, Rows: rows, Seed: uint64(variant*100 + rows)}
			runFull(t, "GTX580", tr)
			want := CPUTranspose(tr.In(), tr.N)
			for i := range want {
				if tr.Out()[i] != want[i] {
					t.Fatalf("transpose%d rows=%d: out[%d] = %v, want %v", variant, rows, i, tr.Out()[i], want[i])
				}
			}
		}
	}
}

// TestMatMulTileUnrollFunctional: the tile-32 and explicitly-unrolled
// kernels compute the same product as the stock configuration.
func TestMatMulTileUnrollFunctional(t *testing.T) {
	cases := []MatMul{
		{N: 64, Tile: 32, Seed: 5},
		{N: 64, Tile: 16, Unroll: 4, Seed: 5},
		{N: 64, Tile: 32, Unroll: 2, Seed: 5},
		{N: 96, Tile: 16, Unroll: 1, Seed: 7},
	}
	for _, c := range cases {
		m := c
		runFull(t, "GTX580", &m)
		want := CPUMatMul(m.A(), m.B(), m.N)
		for i := range want {
			if math.Abs(float64(m.C()[i]-want[i])) > 1e-3*math.Abs(float64(want[i]))+1e-4 {
				t.Fatalf("matmul n=%d tile=%d unroll=%d: C[%d] = %v, want %v",
					m.N, m.Tile, m.Unroll, i, m.C()[i], want[i])
			}
		}
	}
}

// TestHistogramBlockSizesFunctional: non-default block sizes still
// produce the exact histogram in both variants.
func TestHistogramBlockSizesFunctional(t *testing.T) {
	for variant := 0; variant <= 1; variant++ {
		for _, bs := range []int{64, 512, 1024} {
			h := &Histogram{Variant: variant, N: 30000, BlockSize: bs, Seed: uint64(bs)}
			runFull(t, "GTX580", h)
			want := CPUHistogram(h.Input())
			for b := range want {
				if h.Bins()[b] != want[b] {
					t.Fatalf("histogram%d bs=%d: bin %d = %d, want %d", variant, bs, b, h.Bins()[b], want[b])
				}
			}
		}
	}
}

// TestReductionMaxBlocksFunctional: capping the grid-strided variant's
// grid still reduces exactly (each block just covers more input).
func TestReductionMaxBlocksFunctional(t *testing.T) {
	for _, mb := range []int{32, 128, 256} {
		r := &Reduction{Variant: 6, N: 50000, BlockSize: 256, MaxBlocks: mb, Seed: uint64(mb)}
		runFull(t, "GTX580", r)
		want := CPUReduce(r.Input())
		if math.Abs(float64(r.Result-want)) > 1e-4*math.Abs(float64(want)) {
			t.Errorf("max_blocks=%d: got %v, want %v", mb, r.Result, want)
		}
	}
}

// TestDefaultCharacteristicsUnchanged: at default launch parameters the
// characteristics maps carry no tunable keys — transformed and baseline
// runs must never share an identity, but the baseline identity itself
// must stay exactly as it was before the parameters became tunable
// (noise seeds, cache keys and goldens all hang off it).
func TestDefaultCharacteristicsUnchanged(t *testing.T) {
	cases := []struct {
		w      interface{ Characteristics() map[string]float64 }
		want   []string
		descr  string
		nowant []string
	}{
		{&MatMul{N: 256, Seed: 1}, []string{"size"}, "matmul", []string{"tile", "unroll"}},
		{&MatMul{N: 256, Tile: 16, Seed: 1}, []string{"size"}, "matmul tile=16 (explicit default)", []string{"tile"}},
		{&MatMul{N: 256, Tile: 32, Seed: 1}, []string{"size", "tile"}, "matmul tile=32", nil},
		{&Transpose{Variant: 0, N: 256, Seed: 1}, []string{"size"}, "transpose", []string{"block_rows"}},
		{&Transpose{Variant: 0, N: 256, Rows: 8, Seed: 1}, []string{"size"}, "transpose rows=8 (explicit default)", []string{"block_rows"}},
		{&Transpose{Variant: 0, N: 256, Rows: 4, Seed: 1}, []string{"size", "block_rows"}, "transpose rows=4", nil},
		{&Histogram{Variant: 1, N: 4096, Seed: 1}, []string{"size", "skew"}, "histogram", []string{"block_size"}},
		{&Histogram{Variant: 1, N: 4096, BlockSize: 256, Seed: 1}, []string{"size", "skew"}, "histogram bs=256 (explicit default)", []string{"block_size"}},
		{&Histogram{Variant: 1, N: 4096, BlockSize: 128, Seed: 1}, []string{"size", "skew", "block_size"}, "histogram bs=128", nil},
		{&Reduction{Variant: 6, N: 4096, BlockSize: 256, Seed: 1}, []string{"size", "block_size"}, "reduce6", []string{"max_blocks"}},
		{&Reduction{Variant: 6, N: 4096, BlockSize: 256, MaxBlocks: 64, Seed: 1}, []string{"size", "block_size"}, "reduce6 mb=64 (explicit default)", []string{"max_blocks"}},
		{&Reduction{Variant: 6, N: 4096, BlockSize: 256, MaxBlocks: 128, Seed: 1}, []string{"size", "block_size", "max_blocks"}, "reduce6 mb=128", nil},
	}
	for _, c := range cases {
		chars := c.w.Characteristics()
		for _, k := range c.want {
			if _, ok := chars[k]; !ok {
				t.Errorf("%s: characteristics missing %q: %v", c.descr, k, chars)
			}
		}
		for _, k := range c.nowant {
			if _, ok := chars[k]; ok {
				t.Errorf("%s: characteristics leaked default %q: %v", c.descr, k, chars)
			}
		}
		if len(chars) != len(c.want) {
			t.Errorf("%s: characteristics = %v, want exactly keys %v", c.descr, chars, c.want)
		}
	}
}
