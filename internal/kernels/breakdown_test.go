package kernels

import (
	"testing"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// These tests pin the simulator's cycle-accounting bottleneck attribution
// (gpusim.BottleneckBreakdown) in the style of the counter-invariant
// suite: for every kernel family on both device architectures, the
// per-launch breakdown must partition the modeled Cycles exactly (±0, in
// the floating-point sense: Total() reproduces Cycles bit-for-bit), every
// category must be non-negative, and kernels with known stall signatures
// must attribute cycles to the matching category.

// breakdownWorkloads returns one representative of each of the five
// kernel families. Fresh values each call: workloads hold buffers.
func breakdownWorkloads() []profiler.Workload {
	return []profiler.Workload{
		&MatMul{N: 64, Seed: 1},
		&Reduction{Variant: 1, N: 4096, BlockSize: 256, Seed: 2},
		&NeedlemanWunsch{SeqLen: 64, Penalty: 10, Seed: 3},
		&Transpose{Variant: 0, N: 64, Seed: 4},
		&Histogram{Variant: 0, N: 4096, BlockSize: 256, Seed: 5},
	}
}

func TestBreakdownPartitionsCyclesExactly(t *testing.T) {
	for _, devName := range []string{"GTX580", "K20m"} {
		dev, err := gpusim.LookupDevice(devName)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range breakdownWorkloads() {
			launches, err := w.Plan(dev)
			if err != nil {
				t.Fatalf("%s/%s: plan: %v", devName, w.Name(), err)
			}
			sim := gpusim.NewSimulator(dev)
			for i, l := range launches {
				res, err := sim.Launch(l.Config, l.Kernel, gpusim.LaunchOptions{})
				if err != nil {
					t.Fatalf("%s/%s launch %d (%s): %v", devName, w.Name(), i, l.Label, err)
				}
				b := res.Breakdown
				if got := b.Total(); got != res.Cycles {
					t.Errorf("%s/%s launch %d (%s): breakdown total = %v, want exactly Cycles = %v (diff %g)",
						devName, w.Name(), i, l.Label, got, res.Cycles, got-res.Cycles)
				}
				for _, c := range []struct {
					name string
					v    float64
				}{
					{"issue", b.IssueCycles},
					{"mem", b.MemLatencyCycles},
					{"barrier", b.BarrierCycles},
					{"shared-replay", b.SharedReplayCycles},
					{"uncoalesced", b.UncoalescedCycles},
					{"atomics", b.AtomicCycles},
				} {
					if c.v < 0 {
						t.Errorf("%s/%s launch %d (%s): %s cycles = %v, want >= 0",
							devName, w.Name(), i, l.Label, c.name, c.v)
					}
				}
			}
			if rel, ok := w.(profiler.Releaser); ok {
				rel.Release()
			}
		}
	}
}

func TestBreakdownStallSignatures(t *testing.T) {
	bd := func(dev string, w profiler.Workload) gpusim.BottleneckBreakdown {
		return runFull(t, dev, w).Breakdown
	}
	for _, dev := range []string{"GTX580", "K20m"} {
		// reduce1's strided shared-memory indexing bank-conflicts; reduce2's
		// sequential addressing is conflict-free (the §5 contrast).
		if b := bd(dev, &Reduction{Variant: 1, N: 4096, BlockSize: 256, Seed: 2}); b.SharedReplayCycles <= 0 {
			t.Errorf("%s: reduce1 shared-replay cycles = %v, want > 0", dev, b.SharedReplayCycles)
		}
		if b := bd(dev, &Reduction{Variant: 2, N: 4096, BlockSize: 256, Seed: 2}); b.SharedReplayCycles != 0 {
			t.Errorf("%s: reduce2 shared-replay cycles = %v, want 0", dev, b.SharedReplayCycles)
		}
		// Barriers only show where kernels synchronize: every matmul tile
		// loop syncs; the naive copy-transpose never does.
		if b := bd(dev, &MatMul{N: 64, Seed: 1}); b.BarrierCycles <= 0 {
			t.Errorf("%s: matmul barrier cycles = %v, want > 0", dev, b.BarrierCycles)
		}
		// The atomic histogram pays same-bin serialization; skew
		// concentrates updates and must not reduce the attributed cycles.
		uni := bd(dev, &Histogram{Variant: 0, N: 8192, BlockSize: 256, Seed: 5})
		if uni.AtomicCycles <= 0 {
			t.Errorf("%s: histogram atomic cycles = %v, want > 0", dev, uni.AtomicCycles)
		}
		skew := bd(dev, &Histogram{Variant: 0, N: 8192, BlockSize: 256, Seed: 5, Skew: 0.9})
		if skew.AtomicCycles <= uni.AtomicCycles {
			t.Errorf("%s: skewed histogram atomic cycles = %v, want > uniform %v",
				dev, skew.AtomicCycles, uni.AtomicCycles)
		}
	}
	// Uncoalesced replay attribution is a Fermi mechanism (Kepler global
	// loads bypass L1): the strided naive transpose must show it there.
	if b := bd("GTX580", &Transpose{Variant: 0, N: 128, Seed: 4}); b.UncoalescedCycles <= 0 {
		t.Errorf("GTX580: transpose0 uncoalesced cycles = %v, want > 0", b.UncoalescedCycles)
	}
}

func TestProfileBreakdownMatchesAggregateCycles(t *testing.T) {
	for _, dev := range []string{"GTX580", "K20m"} {
		for _, w := range breakdownWorkloads() {
			prof := runFull(t, dev, w)
			if got := prof.Breakdown.Total(); got != prof.Cycles {
				t.Errorf("%s/%s: profile breakdown total = %v, want exactly %v",
					dev, prof.Workload, got, prof.Cycles)
			}
			if prof.Cycles <= 0 {
				t.Errorf("%s/%s: profile cycles = %v, want > 0", dev, prof.Workload, prof.Cycles)
			}
		}
	}
}
