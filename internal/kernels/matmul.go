package kernels

import (
	"fmt"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// MatMul is the CUDA SDK tiled matrix multiplication: C = A·B for n×n
// float32 matrices, computed by a grid of (n/b)×(n/b) thread blocks, each
// loading b×b tiles of A and B through shared memory (§6.1.1 of the
// paper). Load and store traffic is highly unbalanced — b loads per store
// — which is why the paper finds store-throughput counters dominating the
// variable importance.
type MatMul struct {
	// N is the matrix dimension; must be a multiple of Tile.
	N int
	// Tile is the tile edge b (SDK BLOCK_SIZE, default 16).
	Tile int
	// Seed generates the input matrices.
	Seed uint64

	a, b, c []float32
}

// Name implements profiler.Workload.
func (m *MatMul) Name() string { return "matmul" }

// Characteristics implements profiler.Workload.
func (m *MatMul) Characteristics() map[string]float64 {
	return map[string]float64{"size": float64(m.N)}
}

// InputSeed implements profiler.InputSeeded: repeated runs at the same
// size but with fresh inputs keep distinct noise identities.
func (m *MatMul) InputSeed() uint64 { return m.Seed }

// A, B and C return the input and output matrices (valid after Plan; C is
// filled by a fully-simulated run).
func (m *MatMul) A() []float32 { return m.a }
func (m *MatMul) B() []float32 { return m.b }
func (m *MatMul) C() []float32 { return m.c }

// Release drops the matrices so sweeps do not accumulate them.
func (m *MatMul) Release() { m.a, m.b, m.c = nil, nil, nil }

// CPUMatMul is the reference n×n row-major multiply.
func CPUMatMul(a, b []float32, n int) []float32 {
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			brow := b[k*n : (k+1)*n]
			crow := c[i*n : (i+1)*n]
			for j, v := range brow {
				crow[j] += aik * v
			}
		}
	}
	return c
}

// Plan implements profiler.Workload.
func (m *MatMul) Plan(dev *gpusim.Device) ([]profiler.Launch, error) {
	if m.Tile == 0 {
		m.Tile = 16
	}
	if m.Tile != 16 && m.Tile != 32 {
		return nil, fmt.Errorf("kernels: matmul tile %d must be 16 or 32", m.Tile)
	}
	if m.N <= 0 || m.N%m.Tile != 0 {
		return nil, fmt.Errorf("kernels: matmul size %d must be a positive multiple of tile %d", m.N, m.Tile)
	}
	n := m.N
	m.a = make([]float32, n*n)
	m.b = make([]float32, n*n)
	m.c = make([]float32, n*n)
	for i := range m.a {
		m.a[i] = randomF32(m.Seed, uint64(i))
		m.b[i] = randomF32(m.Seed^0xb, uint64(i))
	}

	grid := n / m.Tile
	cfg := gpusim.LaunchConfig{
		GridDimX: grid, GridDimY: grid,
		BlockDimX: m.Tile, BlockDimY: m.Tile,
		RegsPerThread:     20,
		SharedMemPerBlock: 2 * 4 * m.Tile * m.Tile,
	}
	return []profiler.Launch{{
		Label:  "matrixMul",
		Config: cfg,
		Kernel: m.kernel(),
	}}, nil
}

// kernel is the tiled multiply. With blockDim (b, b), each warp covers
// 32/b consecutive tile rows; lane → (tx, ty) via the linear thread index.
func (m *MatMul) kernel() gpusim.KernelFunc {
	n := m.N
	b := m.Tile
	a, bm, c := m.a, m.b, m.c
	return func(w *gpusim.Warp) {
		bx, by := w.BlockIdx()
		full := w.ValidMask() // b² is a multiple of 32, so always full

		var tx, ty, row, col [gpusim.WarpSize]int
		for l := 0; l < gpusim.WarpSize; l++ {
			t := w.LinearTID(l)
			tx[l] = t % b
			ty[l] = t / b
			row[l] = by*b + ty[l]
			col[l] = bx*b + tx[l]
		}
		w.IntOps(full, 4) // index arithmetic for row/col

		as := w.SharedF32(matmulAsSlot, b*b)
		bs := w.SharedF32(matmulBsSlot, b*b)
		var acc [gpusim.WarpSize]float32

		tiles := n / b
		for t := 0; t < tiles; t++ {
			// As[ty][tx] = A[row][t*b+tx]; Bs[ty][tx] = B[t*b+ty][col]
			aIdx := laneInts(func(l int) int { return row[l]*n + t*b + tx[l] })
			bIdx := laneInts(func(l int) int { return (t*b+ty[l])*n + col[l] })
			aAddrs := addrs4(baseA, &aIdx)
			bAddrs := addrs4(baseB, &bIdx)
			w.IntOps(full, 4)
			w.GlobalLoad(full, &aAddrs, 4)
			w.GlobalLoad(full, &bAddrs, 4)
			sIdx := laneInts(func(l int) int { return ty[l]*b + tx[l] })
			sOffs := offs4(&sIdx)
			for l := 0; l < gpusim.WarpSize; l++ {
				as[sIdx[l]] = a[aIdx[l]]
				bs[sIdx[l]] = bm[bIdx[l]]
			}
			w.SharedStore(full, &sOffs)
			w.SharedStore(full, &sOffs)
			w.Sync()

			for k := 0; k < b; k++ {
				aOff := laneInts(func(l int) int { return ty[l]*b + k })
				bOff := laneInts(func(l int) int { return k*b + tx[l] })
				ao := offs4(&aOff)
				bo := offs4(&bOff)
				w.SharedLoad(full, &ao)
				w.SharedLoad(full, &bo)
				w.FloatOps(full, 1) // fused multiply-add
				for l := 0; l < gpusim.WarpSize; l++ {
					acc[l] += as[aOff[l]] * bs[bOff[l]]
				}
			}
			w.Sync()
		}

		cIdx := laneInts(func(l int) int { return row[l]*n + col[l] })
		cAddrs := addrs4(baseC, &cIdx)
		w.IntOps(full, 2)
		w.GlobalStore(full, &cAddrs, 4)
		for l := 0; l < gpusim.WarpSize; l++ {
			c[cIdx[l]] = acc[l]
		}
	}
}
