package kernels

import (
	"fmt"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// MatMul is the CUDA SDK tiled matrix multiplication: C = A·B for n×n
// float32 matrices, computed by a grid of (n/b)×(n/b) thread blocks, each
// loading b×b tiles of A and B through shared memory (§6.1.1 of the
// paper). Load and store traffic is highly unbalanced — b loads per store
// — which is why the paper finds store-throughput counters dominating the
// variable importance.
type MatMul struct {
	// N is the matrix dimension; must be a multiple of Tile.
	N int
	// Tile is the tile edge b (SDK BLOCK_SIZE, default 16).
	Tile int
	// Unroll is the explicit unroll factor of the inner product loop.
	// 0 (the default) models the SDK kernel's fully unrolled loop; an
	// explicit factor u in {1, 2, 4, 8} spends a loop-control op every u
	// iterations but holds fewer values live, shrinking the per-thread
	// register footprint — the classic unroll/occupancy trade the
	// optimizer searches over.
	Unroll int
	// Seed generates the input matrices.
	Seed uint64

	a, b, c []float32
}

// Name implements profiler.Workload.
func (m *MatMul) Name() string { return "matmul" }

// Characteristics implements profiler.Workload. Non-default tile and
// unroll settings (the optimizer's transformations) join the identity so
// transformed runs never share a noise seed or cache key with the
// baseline; at the defaults they are omitted, keeping every existing
// run's identity — and therefore every existing profile — bit-identical.
func (m *MatMul) Characteristics() map[string]float64 {
	c := map[string]float64{"size": float64(m.N)}
	if m.Tile != 0 && m.Tile != 16 {
		c["tile"] = float64(m.Tile)
	}
	if m.Unroll != 0 {
		c["unroll"] = float64(m.Unroll)
	}
	return c
}

// Params implements the optimizer's Tunable contract: the launch-config
// parameters a search may transform, at their effective values.
func (m *MatMul) Params() map[string]int {
	t := m.Tile
	if t == 0 {
		t = 16
	}
	return map[string]int{"tile": t, "unroll": m.Unroll}
}

// ParamDomain implements the optimizer's Tunable contract. unroll 0 is
// the compiler's full unroll.
func (m *MatMul) ParamDomain(name string) []int {
	switch name {
	case "tile":
		return []int{16, 32}
	case "unroll":
		return []int{0, 1, 2, 4, 8}
	}
	return nil
}

// WithParam implements the optimizer's Tunable contract: a fresh,
// unplanned copy of the workload with one parameter changed.
func (m *MatMul) WithParam(name string, value int) (profiler.Workload, error) {
	c := &MatMul{N: m.N, Tile: m.Tile, Unroll: m.Unroll, Seed: m.Seed}
	switch name {
	case "tile":
		if m.N%value != 0 {
			return nil, fmt.Errorf("kernels: matmul size %d is not a multiple of tile %d", m.N, value)
		}
		c.Tile = value
	case "unroll":
		c.Unroll = value
	default:
		return nil, fmt.Errorf("kernels: matmul has no parameter %q", name)
	}
	return c, nil
}

// InputSeed implements profiler.InputSeeded: repeated runs at the same
// size but with fresh inputs keep distinct noise identities.
func (m *MatMul) InputSeed() uint64 { return m.Seed }

// A, B and C return the input and output matrices (valid after Plan; C is
// filled by a fully-simulated run).
func (m *MatMul) A() []float32 { return m.a }
func (m *MatMul) B() []float32 { return m.b }
func (m *MatMul) C() []float32 { return m.c }

// Release drops the matrices so sweeps do not accumulate them.
func (m *MatMul) Release() { m.a, m.b, m.c = nil, nil, nil }

// CPUMatMul is the reference n×n row-major multiply.
func CPUMatMul(a, b []float32, n int) []float32 {
	c := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			brow := b[k*n : (k+1)*n]
			crow := c[i*n : (i+1)*n]
			for j, v := range brow {
				crow[j] += aik * v
			}
		}
	}
	return c
}

// Plan implements profiler.Workload.
func (m *MatMul) Plan(dev *gpusim.Device) ([]profiler.Launch, error) {
	if m.Tile == 0 {
		m.Tile = 16
	}
	if m.Tile != 16 && m.Tile != 32 {
		return nil, fmt.Errorf("kernels: matmul tile %d must be 16 or 32", m.Tile)
	}
	if m.N <= 0 || m.N%m.Tile != 0 {
		return nil, fmt.Errorf("kernels: matmul size %d must be a positive multiple of tile %d", m.N, m.Tile)
	}
	switch m.Unroll {
	case 0, 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("kernels: matmul unroll %d must be 0 (full), 1, 2, 4, or 8", m.Unroll)
	}
	n := m.N
	m.a = make([]float32, n*n)
	m.b = make([]float32, n*n)
	m.c = make([]float32, n*n)
	for i := range m.a {
		m.a[i] = randomF32(m.Seed, uint64(i))
		m.b[i] = randomF32(m.Seed^0xb, uint64(i))
	}

	grid := n / m.Tile
	// Full unrolling (the default) keeps every partial product live: 20
	// registers, as the SDK kernel compiles. An explicit unroll factor
	// holds fewer values and needs less.
	regs := 20
	if m.Unroll > 0 && m.Unroll < m.Tile {
		regs = 16 + m.Unroll/2
	}
	cfg := gpusim.LaunchConfig{
		GridDimX: grid, GridDimY: grid,
		BlockDimX: m.Tile, BlockDimY: m.Tile,
		RegsPerThread:     regs,
		SharedMemPerBlock: 2 * 4 * m.Tile * m.Tile,
	}
	return []profiler.Launch{{
		Label:  "matrixMul",
		Config: cfg,
		Kernel: m.kernel(),
	}}, nil
}

// kernel is the tiled multiply. With blockDim (b, b), each warp covers
// 32/b consecutive tile rows; lane → (tx, ty) via the linear thread index.
func (m *MatMul) kernel() gpusim.KernelFunc {
	n := m.N
	b := m.Tile
	unroll := m.Unroll // 0 = fully unrolled: no loop-control overhead
	a, bm, c := m.a, m.b, m.c
	return func(w *gpusim.Warp) {
		bx, by := w.BlockIdx()
		full := w.ValidMask() // b² is a multiple of 32, so always full

		var tx, ty, row, col [gpusim.WarpSize]int
		for l := 0; l < gpusim.WarpSize; l++ {
			t := w.LinearTID(l)
			tx[l] = t % b
			ty[l] = t / b
			row[l] = by*b + ty[l]
			col[l] = bx*b + tx[l]
		}
		w.IntOps(full, 4) // index arithmetic for row/col

		as := w.SharedF32(matmulAsSlot, b*b)
		bs := w.SharedF32(matmulBsSlot, b*b)
		var acc [gpusim.WarpSize]float32

		tiles := n / b
		for t := 0; t < tiles; t++ {
			// As[ty][tx] = A[row][t*b+tx]; Bs[ty][tx] = B[t*b+ty][col]
			aIdx := laneInts(func(l int) int { return row[l]*n + t*b + tx[l] })
			bIdx := laneInts(func(l int) int { return (t*b+ty[l])*n + col[l] })
			aAddrs := addrs4(baseA, &aIdx)
			bAddrs := addrs4(baseB, &bIdx)
			w.IntOps(full, 4)
			w.GlobalLoad(full, &aAddrs, 4)
			w.GlobalLoad(full, &bAddrs, 4)
			sIdx := laneInts(func(l int) int { return ty[l]*b + tx[l] })
			sOffs := offs4(&sIdx)
			for l := 0; l < gpusim.WarpSize; l++ {
				as[sIdx[l]] = a[aIdx[l]]
				bs[sIdx[l]] = bm[bIdx[l]]
			}
			w.SharedStore(full, &sOffs)
			w.SharedStore(full, &sOffs)
			w.Sync()

			for k := 0; k < b; k++ {
				if unroll > 0 && unroll < b && k%unroll == 0 {
					w.IntOps(full, 1) // loop counter + branch per unroll group
				}
				aOff := laneInts(func(l int) int { return ty[l]*b + k })
				bOff := laneInts(func(l int) int { return k*b + tx[l] })
				ao := offs4(&aOff)
				bo := offs4(&bOff)
				w.SharedLoad(full, &ao)
				w.SharedLoad(full, &bo)
				w.FloatOps(full, 1) // fused multiply-add
				for l := 0; l < gpusim.WarpSize; l++ {
					acc[l] += as[aOff[l]] * bs[bOff[l]]
				}
			}
			w.Sync()
		}

		cIdx := laneInts(func(l int) int { return row[l]*n + col[l] })
		cAddrs := addrs4(baseC, &cIdx)
		w.IntOps(full, 2)
		w.GlobalStore(full, &cAddrs, 4)
		for l := 0; l < gpusim.WarpSize; l++ {
			c[cIdx[l]] = acc[l]
		}
	}
}
