package kernels

import "testing"

func TestHistogramFunctional(t *testing.T) {
	for variant := 0; variant <= 1; variant++ {
		for _, n := range []int{100, 4096, 70000} {
			h := &Histogram{Variant: variant, N: n, Seed: uint64(variant*10 + n)}
			runFull(t, "GTX580", h)
			want := CPUHistogram(h.Input())
			got := h.Bins()
			var total uint32
			for b := range want {
				if want[b] != got[b] {
					t.Fatalf("histogram%d n=%d: bin %d = %d, want %d", variant, n, b, got[b], want[b])
				}
				total += got[b]
			}
			if int(total) != n {
				t.Fatalf("bins sum to %d, want %d", total, n)
			}
		}
	}
}

func TestHistogramSkewFunctional(t *testing.T) {
	h := &Histogram{Variant: 1, N: 50000, Skew: 0.9, Seed: 3}
	runFull(t, "GTX580", h)
	want := CPUHistogram(h.Input())
	if want[0] < 40000 {
		t.Fatalf("skew generator weak: bin0 = %d", want[0])
	}
	for b := range want {
		if want[b] != h.Bins()[b] {
			t.Fatalf("bin %d = %d, want %d", b, h.Bins()[b], want[b])
		}
	}
}

func TestHistogramValidation(t *testing.T) {
	dev := mustDevice(t, "GTX580")
	cases := []*Histogram{
		{Variant: 2, N: 100},
		{Variant: 0, N: 0},
		{Variant: 0, N: 100, Skew: 1.5},
		{Variant: 0, N: 100, BlockSize: 100},
	}
	for i, h := range cases {
		if _, err := h.Plan(dev); err == nil {
			t.Errorf("case %d accepted: %+v", i, h)
		}
	}
}

func TestHistogramContentionSignatures(t *testing.T) {
	profile := func(variant int, skew float64) map[string]float64 {
		return runFull(t, "GTX580",
			&Histogram{Variant: variant, N: 1 << 16, Skew: skew, Seed: 7}).Metrics
	}

	// Skewed input concentrates updates on one bin: atomic replay
	// overhead must rise sharply versus uniform input.
	uniform := profile(0, 0)
	skewed := profile(0, 0.95)
	if skewed["atomic_replay_overhead"] < 4*uniform["atomic_replay_overhead"] {
		t.Fatalf("skew did not raise contention: %v vs %v",
			skewed["atomic_replay_overhead"], uniform["atomic_replay_overhead"])
	}

	// Privatization swaps global atomics for shared ones.
	priv := profile(1, 0)
	if priv["shared_atom_count"] == 0 {
		t.Fatal("privatized variant shows no shared atomics")
	}
	if priv["atom_count"] >= uniform["atom_count"] {
		t.Fatal("privatization did not cut global atomics")
	}
}

func TestHistogramPrivatizationWinsUnderSkew(t *testing.T) {
	time := func(variant int) float64 {
		return runFull(t, "GTX580",
			&Histogram{Variant: variant, N: 1 << 18, Skew: 0.95, Seed: 9}).TimeMS
	}
	global, private := time(0), time(1)
	if private >= global {
		t.Fatalf("privatization should win under skew: global=%v private=%v", global, private)
	}
}
