package kernels

import (
	"fmt"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// Reduction is the CUDA SDK parallel-reduction benchmark: sum-reduce an
// array of float32 with one of seven kernel variants, each demonstrating an
// optimization step. Large arrays need multiple kernel launches as
// synchronization points; Plan generates the full recursive launch
// sequence, exactly like the SDK driver.
//
// Variants (as in the SDK whitepaper and §5 of the paper):
//
//	0 — interleaved addressing with modulo test (divergent branches)
//	1 — interleaved addressing with strided indexing (bank conflicts)
//	2 — sequential addressing (idle threads)
//	3 — first add during global load
//	4 — unroll last warp
//	5 — completely unrolled loop
//	6 — multiple elements per thread (grid-stride loop) + full unrolling
type Reduction struct {
	// Variant selects the kernel, 0–6.
	Variant int
	// N is the array length.
	N int
	// BlockSize is threads per block; a power of two in [64, 1024].
	BlockSize int
	// MaxBlocks caps the grid of variant 6 (SDK default 64).
	MaxBlocks int
	// Seed generates the input data.
	Seed uint64

	input []float32
	ping  []float32
	pong  []float32
	// Result holds the reduced value after a fully-simulated run.
	Result float32
}

// Name implements profiler.Workload.
func (r *Reduction) Name() string { return fmt.Sprintf("reduce%d", r.Variant) }

// Characteristics implements profiler.Workload: the problem parameters the
// paper injects as predictors alongside the counters. A non-default grid
// cap (the optimizer's max_blocks transformation) joins the identity so
// transformed runs never share a noise seed or cache key with the
// baseline; at the default it is omitted, keeping every existing run's
// identity — and therefore every existing profile — bit-identical.
func (r *Reduction) Characteristics() map[string]float64 {
	c := map[string]float64{
		"size":       float64(r.N),
		"block_size": float64(r.BlockSize),
	}
	if r.MaxBlocks != 0 && r.MaxBlocks != defaultReduceMaxBlocks {
		c["max_blocks"] = float64(r.MaxBlocks)
	}
	return c
}

// defaultReduceMaxBlocks is the SDK driver's grid cap for variant 6.
const defaultReduceMaxBlocks = 64

// Params implements the optimizer's Tunable contract: the launch-config
// parameters a search may transform, at their effective values.
func (r *Reduction) Params() map[string]int {
	bs := r.BlockSize
	if bs == 0 {
		bs = 256
	}
	p := map[string]int{"block_size": bs}
	if r.Variant == 6 {
		mb := r.MaxBlocks
		if mb == 0 {
			mb = defaultReduceMaxBlocks
		}
		p["max_blocks"] = mb
	}
	return p
}

// ParamDomain implements the optimizer's Tunable contract.
func (r *Reduction) ParamDomain(name string) []int {
	switch name {
	case "block_size":
		return []int{64, 128, 256, 512, 1024}
	case "max_blocks":
		if r.Variant == 6 {
			return []int{32, 64, 128, 256}
		}
	}
	return nil
}

// WithParam implements the optimizer's Tunable contract: a fresh,
// unplanned copy of the workload with one parameter changed.
func (r *Reduction) WithParam(name string, value int) (profiler.Workload, error) {
	c := &Reduction{Variant: r.Variant, N: r.N, BlockSize: r.BlockSize,
		MaxBlocks: r.MaxBlocks, Seed: r.Seed}
	switch name {
	case "block_size":
		c.BlockSize = value
	case "max_blocks":
		if r.Variant != 6 {
			return nil, fmt.Errorf("kernels: reduce%d has no max_blocks parameter", r.Variant)
		}
		c.MaxBlocks = value
	default:
		return nil, fmt.Errorf("kernels: reduction has no parameter %q", name)
	}
	return c, nil
}

// InputSeed implements profiler.InputSeeded: repeated runs at the same
// size but with fresh inputs keep distinct noise identities.
func (r *Reduction) InputSeed() uint64 { return r.Seed }

// CPUReduce is the reference result: the plain sequential sum.
func CPUReduce(xs []float32) float32 {
	var s float32
	for _, x := range xs {
		s += x
	}
	return s
}

// Input returns the generated input array (valid after Plan).
func (r *Reduction) Input() []float32 { return r.input }

// Release drops the workload's buffers so sweeps over many runs do not
// accumulate them; the workload must be re-Planned before reuse.
func (r *Reduction) Release() { r.input, r.ping, r.pong = nil, nil, nil }

func (r *Reduction) validate() error {
	if r.Variant < 0 || r.Variant > 6 {
		return fmt.Errorf("kernels: reduction variant %d out of range [0,6]", r.Variant)
	}
	if r.N < 2 {
		return fmt.Errorf("kernels: reduction size %d must be at least 2", r.N)
	}
	if r.BlockSize == 0 {
		r.BlockSize = 256
	}
	if r.BlockSize < 64 || r.BlockSize > 1024 || r.BlockSize&(r.BlockSize-1) != 0 {
		return fmt.Errorf("kernels: reduction block size %d must be a power of two in [64,1024]", r.BlockSize)
	}
	if r.MaxBlocks == 0 {
		r.MaxBlocks = 64
	}
	return nil
}

// Plan implements profiler.Workload.
func (r *Reduction) Plan(dev *gpusim.Device) ([]profiler.Launch, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	r.input = make([]float32, r.N)
	for i := range r.input {
		r.input[i] = randomF32(r.Seed, uint64(i))
	}
	// Ping-pong buffers sized for the first launch's partials.
	r.ping = make([]float32, maxInt(1, blocksFor(r.Variant, r.N, r.BlockSize, r.MaxBlocks)))
	r.pong = make([]float32, len(r.ping))

	var launches []profiler.Launch
	src, dst := r.input, r.ping
	srcBase, dstBase := uint64(baseInput), uint64(baseOutput)
	count := r.N
	for count > 1 {
		nextDst, nextDstBase := r.pong, uint64(basePong)
		if &dst[0] == &r.pong[0] {
			nextDst, nextDstBase = r.ping, baseOutput
		}
		blocks := blocksFor(r.Variant, count, r.BlockSize, r.MaxBlocks)
		cfg := gpusim.LaunchConfig{
			GridDimX: blocks, GridDimY: 1,
			BlockDimX: r.BlockSize, BlockDimY: 1,
			RegsPerThread:     regsForVariant(r.Variant),
			SharedMemPerBlock: 4 * r.BlockSize,
		}
		launches = append(launches, profiler.Launch{
			Label:  r.Name(),
			Config: cfg,
			Kernel: r.kernel(src, dst, count, srcBase, dstBase),
		})
		src, dst = dst, nextDst
		srcBase, dstBase = dstBase, nextDstBase
		count = blocks
	}
	// src now holds the buffer that receives the final value; capture the
	// scalar after the last launch completes.
	final := src
	launches[len(launches)-1].Kernel = chain(launches[len(launches)-1].Kernel, func() {
		r.Result = final[0]
	})
	return launches, nil
}

// blocksFor returns the grid size for one launch over count elements.
func blocksFor(variant, count, blockSize, maxBlocks int) int {
	switch {
	case variant <= 2:
		return ceilDiv(count, blockSize)
	case variant <= 5:
		return maxInt(1, ceilDiv(count, 2*blockSize))
	default:
		return maxInt(1, minInt(maxBlocks, ceilDiv(count, 2*blockSize)))
	}
}

// regsForVariant approximates the per-thread register footprint of each
// SDK kernel (more unrolling → more registers).
func regsForVariant(v int) int {
	switch {
	case v <= 2:
		return 10
	case v <= 4:
		return 12
	case v == 5:
		return 14
	default:
		return 18
	}
}

func (r *Reduction) kernel(src, dst []float32, n int, srcBase, dstBase uint64) gpusim.KernelFunc {
	switch r.Variant {
	case 0:
		return reduce0(src, dst, n, srcBase, dstBase)
	case 1:
		return reduce1(src, dst, n, srcBase, dstBase)
	case 2:
		return reduce2(src, dst, n, srcBase, dstBase)
	case 3:
		return reduce3(src, dst, n, srcBase, dstBase)
	case 4:
		return reduceUnrolled(src, dst, n, srcBase, dstBase, false, false)
	case 5:
		return reduceUnrolled(src, dst, n, srcBase, dstBase, true, false)
	default:
		return reduceUnrolled(src, dst, n, srcBase, dstBase, true, true)
	}
}

// loadToShared performs the initial "sdata[tid] = (i < n) ? g[i] : 0" phase
// common to variants 0–2.
func loadToShared(w *gpusim.Warp, src []float32, sdata []float32, n int, srcBase uint64) {
	bdim, _ := w.BlockDim()
	bx, _ := w.BlockIdx()
	valid := w.ValidMask()
	tid := laneInts(w.LinearTID)
	gi := laneInts(func(l int) int { return bx*bdim + tid[l] })
	inRange := valid & gpusim.MaskWhere(func(l int) bool { return gi[l] < n })

	w.IntOps(valid, 2) // i = blockIdx.x*blockDim.x + threadIdx.x
	w.Branch(valid, inRange)
	addrs := addrs4(srcBase, &gi)
	w.GlobalLoad(inRange, &addrs, 4)
	for l := 0; l < gpusim.WarpSize; l++ {
		if !valid.Active(l) {
			continue
		}
		if inRange.Active(l) {
			sdata[tid[l]] = src[gi[l]]
		} else {
			sdata[tid[l]] = 0
		}
	}
	offs := offs4(&tid)
	w.SharedStore(valid, &offs)
	w.Sync()
}

// writeBlockResult performs the final "if (tid == 0) g_odata[bx] = sdata[0]".
func writeBlockResult(w *gpusim.Warp, dst []float32, sdata []float32, dstBase uint64) {
	valid := w.ValidMask()
	bx, _ := w.BlockIdx()
	lane0 := valid & gpusim.MaskFirstN(1)
	if w.WarpID() != 0 {
		lane0 = 0
	}
	w.Branch(valid, lane0)
	if lane0 != 0 {
		var zero [gpusim.WarpSize]uint32
		w.SharedLoad(lane0, &zero)
		out := laneInts(func(int) int { return bx })
		addrs := addrs4(dstBase, &out)
		w.GlobalStore(lane0, &addrs, 4)
		dst[bx] = sdata[0]
	}
}

// reduce0: interleaved addressing with a modulo guard — heavy divergence.
func reduce0(src, dst []float32, n int, srcBase, dstBase uint64) gpusim.KernelFunc {
	return func(w *gpusim.Warp) {
		bdim, _ := w.BlockDim()
		sdata := w.SharedF32(reductionSdataSlot, bdim)
		valid := w.ValidMask()
		tid := laneInts(w.LinearTID)
		loadToShared(w, src, sdata, n, srcBase)

		for s := 1; s < bdim; s *= 2 {
			active := valid & gpusim.MaskWhere(func(l int) bool { return tid[l]%(2*s) == 0 })
			w.IntOps(valid, 3) // modulo is multi-op on GPU integer units
			w.Branch(valid, active)
			if active != 0 {
				self := offs4(&tid)
				partner := laneInts(func(l int) int { return tid[l] + s })
				po := offs4(&partner)
				w.SharedLoad(active, &po)
				w.SharedLoad(active, &self)
				w.FloatOps(active, 1)
				for l := 0; l < gpusim.WarpSize; l++ {
					if active.Active(l) {
						sdata[tid[l]] += sdata[tid[l]+s]
					}
				}
				w.SharedStore(active, &self)
			}
			w.Sync()
		}
		writeBlockResult(w, dst, sdata, dstBase)
	}
}

// reduce1: strided indexing replaces the modulo — divergence-free within
// early iterations but introduces shared-memory bank conflicts.
func reduce1(src, dst []float32, n int, srcBase, dstBase uint64) gpusim.KernelFunc {
	return func(w *gpusim.Warp) {
		bdim, _ := w.BlockDim()
		sdata := w.SharedF32(reductionSdataSlot, bdim)
		valid := w.ValidMask()
		tid := laneInts(w.LinearTID)
		loadToShared(w, src, sdata, n, srcBase)

		for s := 1; s < bdim; s *= 2 {
			index := laneInts(func(l int) int { return 2 * s * tid[l] })
			active := valid & gpusim.MaskWhere(func(l int) bool { return index[l] < bdim })
			w.IntOps(valid, 2) // index = 2*s*tid; compare
			w.Branch(valid, active)
			if active != 0 {
				self := offs4(&index)
				partner := laneInts(func(l int) int { return index[l] + s })
				po := offs4(&partner)
				w.SharedLoad(active, &po)
				w.SharedLoad(active, &self)
				w.FloatOps(active, 1)
				for l := 0; l < gpusim.WarpSize; l++ {
					if active.Active(l) {
						sdata[index[l]] += sdata[index[l]+s]
					}
				}
				w.SharedStore(active, &self)
			}
			w.Sync()
		}
		writeBlockResult(w, dst, sdata, dstBase)
	}
}

// reduce2: sequential addressing — conflict-free, but half the threads
// idle from the first iteration.
func reduce2(src, dst []float32, n int, srcBase, dstBase uint64) gpusim.KernelFunc {
	return func(w *gpusim.Warp) {
		bdim, _ := w.BlockDim()
		sdata := w.SharedF32(reductionSdataSlot, bdim)
		valid := w.ValidMask()
		tid := laneInts(w.LinearTID)
		loadToShared(w, src, sdata, n, srcBase)
		sequentialReduce(w, sdata, bdim, valid, &tid, 0)
		writeBlockResult(w, dst, sdata, dstBase)
	}
}

// sequentialReduce runs the "for s = bdim/2; s > stop; s >>= 1" phase used
// by variants 2–6 (stop=0 keeps the barrier to the end; stop=32 leaves the
// last warp for the unrolled finish).
func sequentialReduce(w *gpusim.Warp, sdata []float32, bdim int, valid gpusim.Mask, tid *[gpusim.WarpSize]int, stop int) {
	for s := bdim / 2; s > stop; s >>= 1 {
		active := valid & gpusim.MaskWhere(func(l int) bool { return tid[l] < s })
		w.IntOps(valid, 1)
		w.Branch(valid, active)
		if active != 0 {
			self := offs4(tid)
			partner := laneInts(func(l int) int { return tid[l] + s })
			po := offs4(&partner)
			w.SharedLoad(active, &po)
			w.SharedLoad(active, &self)
			w.FloatOps(active, 1)
			for l := 0; l < gpusim.WarpSize; l++ {
				if active.Active(l) {
					sdata[tid[l]] += sdata[tid[l]+s]
				}
			}
			w.SharedStore(active, &self)
		}
		w.Sync()
	}
}

// reduce3: halve the grid by adding two elements during the global load.
func reduce3(src, dst []float32, n int, srcBase, dstBase uint64) gpusim.KernelFunc {
	return func(w *gpusim.Warp) {
		bdim, _ := w.BlockDim()
		sdata := w.SharedF32(reductionSdataSlot, bdim)
		valid := w.ValidMask()
		tid := laneInts(w.LinearTID)
		firstAddLoad(w, src, sdata, n, srcBase, valid, &tid)
		sequentialReduce(w, sdata, bdim, valid, &tid, 0)
		writeBlockResult(w, dst, sdata, dstBase)
	}
}

// firstAddLoad is "mySum = g[i] + g[i+blockDim]" with bounds guards.
func firstAddLoad(w *gpusim.Warp, src []float32, sdata []float32, n int, srcBase uint64, valid gpusim.Mask, tid *[gpusim.WarpSize]int) {
	bdim, _ := w.BlockDim()
	bx, _ := w.BlockIdx()
	gi := laneInts(func(l int) int { return bx*bdim*2 + tid[l] })
	first := valid & gpusim.MaskWhere(func(l int) bool { return gi[l] < n })
	second := valid & gpusim.MaskWhere(func(l int) bool { return gi[l]+bdim < n })

	w.IntOps(valid, 3)
	w.Branch(valid, first)
	a1 := addrs4(srcBase, &gi)
	w.GlobalLoad(first, &a1, 4)
	gi2 := laneInts(func(l int) int { return gi[l] + bdim })
	w.Branch(valid, second)
	a2 := addrs4(srcBase, &gi2)
	w.GlobalLoad(second, &a2, 4)
	w.FloatOps(second, 1)
	for l := 0; l < gpusim.WarpSize; l++ {
		if !valid.Active(l) {
			continue
		}
		var v float32
		if first.Active(l) {
			v = src[gi[l]]
		}
		if second.Active(l) {
			v += src[gi2[l]]
		}
		sdata[tid[l]] = v
	}
	offs := offs4(tid)
	w.SharedStore(valid, &offs)
	w.Sync()
}

// reduceUnrolled covers variants 4, 5 and 6: first-add load (or the
// variant-6 grid-stride accumulation), a sequential reduction down to warp
// width, and the barrier-free unrolled last warp.
func reduceUnrolled(src, dst []float32, n int, srcBase, dstBase uint64, fullyUnrolled, gridStride bool) gpusim.KernelFunc {
	return func(w *gpusim.Warp) {
		bdim, _ := w.BlockDim()
		sdata := w.SharedF32(reductionSdataSlot, bdim)
		valid := w.ValidMask()
		tid := laneInts(w.LinearTID)

		if gridStride {
			gridStrideLoad(w, src, sdata, n, srcBase, valid, &tid)
		} else {
			firstAddLoad(w, src, sdata, n, srcBase, valid, &tid)
		}

		// Fully unrolled variants skip the loop bookkeeping; dynamic
		// instruction counts for the compares/branches disappear.
		if fullyUnrolled {
			for s := bdim / 2; s > 32; s >>= 1 {
				active := valid & gpusim.MaskWhere(func(l int) bool { return tid[l] < s })
				if active != 0 {
					applySequentialStep(w, sdata, active, &tid, s)
				}
				w.Sync()
			}
		} else {
			sequentialReduce(w, sdata, bdim, valid, &tid, 32)
		}

		// Unrolled last warp: lanes 0–31 of warp 0, no barriers
		// (warp-synchronous execution on volatile shared memory).
		if w.WarpID() == 0 {
			active := valid & gpusim.MaskFirstN(32)
			w.Branch(valid, active)
			for s := 32; s > 0; s >>= 1 {
				applySequentialStep(w, sdata, active, &tid, s)
			}
		}
		writeBlockResult(w, dst, sdata, dstBase)
	}
}

// applySequentialStep is one "sdata[tid] += sdata[tid+s]" under mask.
func applySequentialStep(w *gpusim.Warp, sdata []float32, active gpusim.Mask, tid *[gpusim.WarpSize]int, s int) {
	self := offs4(tid)
	partner := laneInts(func(l int) int { return tid[l] + s })
	po := offs4(&partner)
	w.SharedLoad(active, &po)
	w.SharedLoad(active, &self)
	w.FloatOps(active, 1)
	for l := 0; l < gpusim.WarpSize; l++ {
		if active.Active(l) && tid[l]+s < len(sdata) {
			sdata[tid[l]] += sdata[tid[l]+s]
		}
	}
	w.SharedStore(active, &self)
}

// gridStrideLoad is reduce6's accumulation loop: each thread strides
// through the array summing into a register before the shared phase.
func gridStrideLoad(w *gpusim.Warp, src []float32, sdata []float32, n int, srcBase uint64, valid gpusim.Mask, tid *[gpusim.WarpSize]int) {
	bdim, _ := w.BlockDim()
	gdim, _ := w.GridDim()
	bx, _ := w.BlockIdx()
	stride := bdim * 2 * gdim

	var mySum [gpusim.WarpSize]float32
	gi := laneInts(func(l int) int { return bx*bdim*2 + tid[l] })
	w.IntOps(valid, 3)
	for {
		first := valid & gpusim.MaskWhere(func(l int) bool { return gi[l] < n })
		w.Branch(valid, first)
		if first == 0 {
			break
		}
		a1 := addrs4(srcBase, &gi)
		w.GlobalLoad(first, &a1, 4)
		gi2 := laneInts(func(l int) int { return gi[l] + bdim })
		second := valid & gpusim.MaskWhere(func(l int) bool { return gi2[l] < n })
		w.Branch(valid, second)
		a2 := addrs4(srcBase, &gi2)
		w.GlobalLoad(second, &a2, 4)
		w.FloatOps(first, 2)
		w.IntOps(valid, 1) // i += gridSize
		for l := 0; l < gpusim.WarpSize; l++ {
			if first.Active(l) {
				mySum[l] += src[gi[l]]
			}
			if second.Active(l) {
				mySum[l] += src[gi2[l]]
			}
		}
		for l := range gi {
			gi[l] += stride
		}
	}
	for l := 0; l < gpusim.WarpSize; l++ {
		if valid.Active(l) {
			sdata[tid[l]] = mySum[l]
		}
	}
	offs := offs4(tid)
	w.SharedStore(valid, &offs)
	w.Sync()
}

// chain wraps a kernel so that after fn runs for the final warp of the
// final block, post executes. The launcher runs blocks sequentially, so
// post fires after the launch's last simulated work.
func chain(fn gpusim.KernelFunc, post func()) gpusim.KernelFunc {
	return func(w *gpusim.Warp) {
		fn(w)
		gx, gy := w.GridDim()
		bx, by := w.BlockIdx()
		if bx == gx-1 && by == gy-1 && w.WarpID() == 0 {
			post()
		}
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
