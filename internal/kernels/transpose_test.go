package kernels

import (
	"testing"
)

func TestTransposeFunctionalAllVariants(t *testing.T) {
	for variant := 0; variant <= 2; variant++ {
		for _, n := range []int{32, 64, 128} {
			tr := &Transpose{Variant: variant, N: n, Seed: uint64(variant*100 + n)}
			runFull(t, "GTX580", tr)
			want := CPUTranspose(tr.In(), n)
			got := tr.Out()
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("transpose%d n=%d: out[%d] = %v, want %v", variant, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTransposeOnKepler(t *testing.T) {
	tr := &Transpose{Variant: 2, N: 64, Seed: 5}
	runFull(t, "K20m", tr)
	want := CPUTranspose(tr.In(), 64)
	for i := range want {
		if want[i] != tr.Out()[i] {
			t.Fatalf("out[%d] = %v, want %v", i, tr.Out()[i], want[i])
		}
	}
}

func TestTransposeValidation(t *testing.T) {
	dev := mustDevice(t, "GTX580")
	for i, tr := range []*Transpose{{Variant: 3, N: 64}, {Variant: 0, N: 0}, {Variant: 0, N: 48}} {
		if _, err := tr.Plan(dev); err == nil {
			t.Errorf("case %d accepted: %+v", i, tr)
		}
	}
}

func TestTransposeCounterSignatures(t *testing.T) {
	// The SDK optimization ladder, mechanistically:
	//   naive     — uncoalesced stores (many store transactions)
	//   coalesced — clean stores but 32-way shared bank conflicts
	//   padded    — neither
	profile := func(v int) map[string]float64 {
		return runFull(t, "GTX580", &Transpose{Variant: v, N: 256, Seed: 1}).Metrics
	}
	naive := profile(0)
	coalesced := profile(1)
	padded := profile(2)

	// Naive writes one transaction per lane; tiled variants coalesce.
	if naive["global_store_transaction"] < 8*coalesced["global_store_transaction"] {
		t.Fatalf("naive stores %v vs coalesced %v: expected ≥8x",
			naive["global_store_transaction"], coalesced["global_store_transaction"])
	}
	// The unpadded tile conflicts hard; the padded one not at all.
	if coalesced["shared_replay_overhead"] <= 0 {
		t.Fatal("unpadded tile shows no bank conflicts")
	}
	if padded["shared_replay_overhead"] != 0 {
		t.Fatalf("padded tile still conflicts: %v", padded["shared_replay_overhead"])
	}
	// 32-way conflict: ~31 replays per shared load in the store phase.
	if conflicts := coalesced["l1_shared_bank_conflict"]; conflicts < 100 {
		t.Fatalf("expected heavy conflicts, got %v", conflicts)
	}
}

func TestTransposeOptimizationLadder(t *testing.T) {
	time := func(v int) float64 {
		return runFull(t, "GTX580", &Transpose{Variant: v, N: 512, Seed: 2}).TimeMS
	}
	naive, coalesced, padded := time(0), time(1), time(2)
	if !(naive > coalesced && coalesced > padded) {
		t.Fatalf("optimization ladder broken: naive=%v coalesced=%v padded=%v",
			naive, coalesced, padded)
	}
}
