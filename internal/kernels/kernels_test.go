package kernels

import (
	"math"
	"testing"

	"blackforest/internal/gpusim"
	"blackforest/internal/profiler"
)

// runFull profiles a workload with every block simulated and no noise, so
// functional output is complete and counters exact.
func runFull(t *testing.T, device string, w profiler.Workload) *profiler.Profile {
	t.Helper()
	dev, err := gpusim.LookupDevice(device)
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New(dev, profiler.Options{MaxSimBlocks: 0, NoiseSigma: -1})
	prof, err := p.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestReductionFunctionalAllVariants(t *testing.T) {
	for variant := 0; variant <= 6; variant++ {
		for _, n := range []int{100, 1000, 4096, 70000} {
			r := &Reduction{Variant: variant, N: n, BlockSize: 256, Seed: uint64(variant*1000 + n)}
			runFull(t, "GTX580", r)
			want := CPUReduce(r.Input())
			got := r.Result
			if math.Abs(float64(got-want)) > 1e-3*math.Abs(float64(want))+1e-3 {
				t.Errorf("reduce%d n=%d: got %v, want %v", variant, n, got, want)
			}
		}
	}
}

func TestReductionBlockSizes(t *testing.T) {
	for _, bs := range []int{64, 128, 512, 1024} {
		r := &Reduction{Variant: 6, N: 50000, BlockSize: bs, Seed: 9}
		runFull(t, "GTX580", r)
		want := CPUReduce(r.Input())
		// Tree and sequential float32 sums differ by rounding order.
		if math.Abs(float64(r.Result-want)) > 1e-4*math.Abs(float64(want)) {
			t.Errorf("block size %d: got %v, want %v", bs, r.Result, want)
		}
	}
}

func TestReductionOnKepler(t *testing.T) {
	r := &Reduction{Variant: 2, N: 10000, BlockSize: 256, Seed: 3}
	runFull(t, "K20m", r)
	want := CPUReduce(r.Input())
	if math.Abs(float64(r.Result-want)) > 1e-4*math.Abs(float64(want)) {
		t.Errorf("got %v, want %v", r.Result, want)
	}
}

func TestReductionValidation(t *testing.T) {
	dev, _ := gpusim.LookupDevice("GTX580")
	cases := []*Reduction{
		{Variant: 7, N: 100},
		{Variant: -1, N: 100},
		{Variant: 0, N: 1},
		{Variant: 0, N: 100, BlockSize: 100}, // not a power of two
		{Variant: 0, N: 100, BlockSize: 32},  // below 64
	}
	for i, r := range cases {
		if _, err := r.Plan(dev); err == nil {
			t.Errorf("case %d accepted: %+v", i, r)
		}
	}
}

func TestReductionCounterSignatures(t *testing.T) {
	// The paper's §5 story, mechanistically: reduce0 diverges, reduce1
	// bank-conflicts, reduce2 does neither.
	profile := func(v int) *profiler.Profile {
		return runFull(t, "GTX580", &Reduction{Variant: v, N: 1 << 16, BlockSize: 256, Seed: 1})
	}
	p0 := profile(0)
	p1 := profile(1)
	p2 := profile(2)
	p6 := profile(6)

	if p1.Metrics["shared_replay_overhead"] <= 0 {
		t.Fatal("reduce1 shows no shared-memory replay overhead")
	}
	if p2.Metrics["shared_replay_overhead"] != 0 {
		t.Fatalf("reduce2 shows replay overhead %v", p2.Metrics["shared_replay_overhead"])
	}
	if p0.Metrics["divergent_branch"] <= p1.Metrics["divergent_branch"] {
		t.Fatal("reduce0 should diverge more than reduce1")
	}
	if p6.Metrics["inst_executed"] >= p2.Metrics["inst_executed"] {
		t.Fatal("reduce6 should execute fewer instructions than reduce2")
	}
	// Optimization order holds for the modeled time.
	if !(p0.TimeMS > p1.TimeMS && p1.TimeMS > p2.TimeMS && p2.TimeMS > p6.TimeMS) {
		t.Fatalf("optimization ladder broken: %v %v %v %v",
			p0.TimeMS, p1.TimeMS, p2.TimeMS, p6.TimeMS)
	}
}

func TestMatMulFunctional(t *testing.T) {
	for _, n := range []int{16, 32, 64, 96} {
		m := &MatMul{N: n, Seed: uint64(n)}
		runFull(t, "GTX580", m)
		want := CPUMatMul(m.A(), m.B(), n)
		for i := range want {
			if math.Abs(float64(want[i]-m.C()[i])) > 1e-3 {
				t.Fatalf("n=%d: C[%d] = %v, want %v", n, i, m.C()[i], want[i])
			}
		}
	}
}

func TestMatMulTile32(t *testing.T) {
	m := &MatMul{N: 64, Tile: 32, Seed: 5}
	runFull(t, "GTX580", m)
	want := CPUMatMul(m.A(), m.B(), 64)
	for i := range want {
		if math.Abs(float64(want[i]-m.C()[i])) > 1e-3 {
			t.Fatalf("tile 32: C[%d] = %v, want %v", i, m.C()[i], want[i])
		}
	}
}

func TestMatMulValidation(t *testing.T) {
	dev, _ := gpusim.LookupDevice("GTX580")
	for i, m := range []*MatMul{{N: 0}, {N: 17}, {N: 64, Tile: 8}} {
		if _, err := m.Plan(dev); err == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

func TestMatMulLoadStoreImbalance(t *testing.T) {
	// b loads per store (the paper's Fig 5 explanation).
	prof := runFull(t, "GTX580", &MatMul{N: 128, Seed: 2})
	ratio := prof.Metrics["gld_request"] / prof.Metrics["gst_request"]
	if ratio < 8 || ratio > 32 {
		t.Fatalf("load/store request ratio %v, want ≈ 2·(n/b) loads per store", ratio)
	}
}

func TestNWFunctional(t *testing.T) {
	for _, n := range []int{16, 48, 128} {
		nw := &NeedlemanWunsch{SeqLen: n, Seed: uint64(n)}
		runFull(t, "GTX580", nw)
		want := nw.CPUNeedlemanWunsch()
		got := nw.Score()
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("n=%d: score[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestNWFunctionalKepler(t *testing.T) {
	nw := &NeedlemanWunsch{SeqLen: 64, Seed: 4}
	runFull(t, "K20m", nw)
	want := nw.CPUNeedlemanWunsch()
	got := nw.Score()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("score[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNWValidation(t *testing.T) {
	dev, _ := gpusim.LookupDevice("GTX580")
	for i, nw := range []*NeedlemanWunsch{{SeqLen: 0}, {SeqLen: 100}} {
		if _, err := nw.Plan(dev); err == nil {
			t.Errorf("case %d accepted: %+v", i, nw)
		}
	}
}

func TestNWLaunchStructure(t *testing.T) {
	dev, _ := gpusim.LookupDevice("GTX580")
	nw := &NeedlemanWunsch{SeqLen: 128, Seed: 1}
	launches, err := nw.Plan(dev)
	if err != nil {
		t.Fatal(err)
	}
	// 2·(n/16) − 1 diagonal strips.
	if want := 2*(128/16) - 1; len(launches) != want {
		t.Fatalf("%d launches, want %d", len(launches), want)
	}
	// Strip i has i blocks, rising then falling.
	if launches[0].Config.GridDimX != 1 || launches[7].Config.GridDimX != 8 {
		t.Fatal("strip block counts wrong")
	}
}

func TestNWCounterSignatures(t *testing.T) {
	prof := runFull(t, "GTX580", &NeedlemanWunsch{SeqLen: 128, Seed: 6})
	if prof.Metrics["l1_shared_bank_conflict"] <= 0 {
		t.Fatal("NW's diagonal shared accesses should conflict (paper §6.1.2)")
	}
	if prof.Metrics["achieved_occupancy"] > 0.2 {
		t.Fatalf("16-thread blocks should give low occupancy, got %v",
			prof.Metrics["achieved_occupancy"])
	}
	if prof.Metrics["warp_execution_efficiency"] > 60 {
		t.Fatalf("half-empty warps should cap efficiency, got %v",
			prof.Metrics["warp_execution_efficiency"])
	}
}

func TestWorkloadCharacteristics(t *testing.T) {
	r := &Reduction{Variant: 1, N: 100, BlockSize: 128}
	c := r.Characteristics()
	if c["size"] != 100 || c["block_size"] != 128 {
		t.Fatalf("reduction characteristics %v", c)
	}
	m := &MatMul{N: 64}
	if m.Characteristics()["size"] != 64 {
		t.Fatal("matmul characteristics wrong")
	}
	nw := &NeedlemanWunsch{SeqLen: 256}
	if nw.Characteristics()["size"] != 256 {
		t.Fatal("nw characteristics wrong")
	}
	if r.Name() != "reduce1" || m.Name() != "matmul" || nw.Name() != "needle" {
		t.Fatal("workload names wrong")
	}
}

func TestSampledCountersApproximateFull(t *testing.T) {
	// Counters from sampled simulation must land near the full run's.
	dev, _ := gpusim.LookupDevice("GTX580")
	full := profiler.New(dev, profiler.Options{MaxSimBlocks: 0, NoiseSigma: -1})
	sampled := profiler.New(dev, profiler.Options{MaxSimBlocks: 8, NoiseSigma: -1})

	pf, err := full.Run(&MatMul{N: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := sampled.Run(&MatMul{N: 256, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gld_request", "gst_request", "inst_executed", "shared_load"} {
		rel := math.Abs(pf.Metrics[name]-ps.Metrics[name]) / pf.Metrics[name]
		if rel > 0.05 {
			t.Errorf("%s: sampled %v vs full %v (%.1f%% off)",
				name, ps.Metrics[name], pf.Metrics[name], 100*rel)
		}
	}
}

// mustDevice returns the named device or fails the test.
func mustDevice(t *testing.T, name string) *gpusim.Device {
	t.Helper()
	dev, err := gpusim.LookupDevice(name)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}
