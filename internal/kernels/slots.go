package kernels

import "blackforest/internal/gpusim"

// Block-state slots for the kernels' shared-memory arrays, interned once at
// package init so the per-warp lookup is a slice index rather than a
// string-keyed map access (see gpusim.NewSlot).
var (
	matmulAsSlot       = gpusim.NewSlot()
	matmulBsSlot       = gpusim.NewSlot()
	nwTempSlot         = gpusim.NewSlot()
	nwRefSlot          = gpusim.NewSlot()
	transposeTileSlot  = gpusim.NewSlot()
	reductionSdataSlot = gpusim.NewSlot()
	histPrivSlot       = gpusim.NewSlot()
)
