// Package cpusim is the CPU substrate for the paper's §7 heterogeneous
// extension ("we believe our approach is very useful in the context of
// emerging CPU+GPUs heterogeneous systems … by first proving BF's usability
// on CPUs"). It models a multicore CPU analytically — cores, SIMD width,
// cache hierarchy, memory bandwidth — and exposes a PAPI-style counter set
// through the same Profile/Frame plumbing the GPU profiler uses, so the
// BlackForest pipeline runs unchanged on CPU data.
//
// Unlike gpusim, the CPU model is analytic rather than execution-driven:
// workloads report their operation and traffic totals and the machine model
// derives counters and time. That is sufficient for the extension's goal
// (BF is substrate-agnostic) and keeps the package small.
package cpusim

import (
	"fmt"
	"math"
	"sort"

	"blackforest/internal/profiler"
	"blackforest/internal/stats"
)

// CPU describes a multicore processor.
type CPU struct {
	Name         string
	Cores        int
	SIMDWidth    int // float32 lanes per vector unit
	ClockGHz     float64
	IPCPeak      float64 // per-core scalar instructions per cycle
	L1KB         int     // per-core L1D
	L2KB         int     // per-core L2
	LLCKB        int     // shared last-level cache
	LineBytes    int
	MemBWGBps    float64
	LLCLatency   int // cycles
	MemLatency   int // cycles
	IdleWatts    float64
	DynWattsPeak float64
}

// cpus is the built-in registry.
var cpus = map[string]*CPU{
	// A Sandy Bridge-class dual-socket node, the CPU counterpart of the
	// paper's GPU testbed era.
	"XeonE5": {
		Name: "XeonE5", Cores: 16, SIMDWidth: 8, ClockGHz: 2.6, IPCPeak: 2.2,
		L1KB: 32, L2KB: 256, LLCKB: 20 * 1024, LineBytes: 64,
		MemBWGBps: 51.2, LLCLatency: 40, MemLatency: 200,
		IdleWatts: 40, DynWattsPeak: 130,
	},
	// A smaller desktop part for CPU-vs-CPU scaling tests.
	"CoreI7": {
		Name: "CoreI7", Cores: 4, SIMDWidth: 8, ClockGHz: 3.4, IPCPeak: 2.4,
		L1KB: 32, L2KB: 256, LLCKB: 8 * 1024, LineBytes: 64,
		MemBWGBps: 25.6, LLCLatency: 36, MemLatency: 190,
		IdleWatts: 15, DynWattsPeak: 70,
	},
}

// LookupCPU returns the named CPU model.
func LookupCPU(name string) (*CPU, error) {
	c, ok := cpus[name]
	if !ok {
		return nil, fmt.Errorf("cpusim: unknown CPU %q (available: %v)", name, CPUNames())
	}
	cc := *c
	return &cc, nil
}

// CPUNames returns the registered CPU names, sorted.
func CPUNames() []string {
	names := make([]string, 0, len(cpus))
	for n := range cpus {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Totals is what a workload reports to the machine model: its operation
// and memory-traffic totals plus parallel structure.
type Totals struct {
	ScalarOps    float64 // non-vectorizable instructions
	VectorOps    float64 // float32 SIMD ops (elementwise count)
	Bytes        float64 // unique bytes touched
	ReuseBytes   float64 // bytes re-touched with cache-friendly reuse
	Branches     float64
	BranchMisses float64
	Threads      int // usable parallelism (≤ capped by cores)
}

// Workload is a CPU-profilable application.
type Workload interface {
	Name() string
	Characteristics() map[string]float64
	// Totals reports the run's aggregate work for the machine model.
	Totals(c *CPU) Totals
}

// Profiler profiles CPU workloads into the same Profile records the GPU
// profiler produces, so profiler.ToFrame and the whole pipeline apply.
type Profiler struct {
	cpu *CPU
	rng *stats.RNG
	sig float64
}

// NewProfiler builds a CPU profiler with the given noise (same semantics
// as the GPU profiler: 0 = default 1.5%, negative = none).
func NewProfiler(cpu *CPU, noiseSigma float64, seed uint64) *Profiler {
	if noiseSigma == 0 {
		noiseSigma = 0.015
	}
	if noiseSigma < 0 {
		noiseSigma = 0
	}
	return &Profiler{cpu: cpu, rng: stats.NewRNG(seed ^ 0xc9a), sig: noiseSigma}
}

// Run profiles one workload run.
func (p *Profiler) Run(w Workload) (*profiler.Profile, error) {
	c := p.cpu
	tt := w.Totals(c)
	if tt.Threads <= 0 {
		tt.Threads = 1
	}
	threads := math.Min(float64(tt.Threads), float64(c.Cores))

	// Instruction stream: vector ops retire SIMDWidth lanes per instr.
	instructions := tt.ScalarOps + tt.VectorOps/float64(c.SIMDWidth) + tt.Branches

	// Cache model: unique bytes beyond the LLC spill to memory; reuse
	// bytes hit the hierarchy.
	llcBytes := float64(c.LLCKB * 1024)
	memBytes := tt.Bytes
	llcHits := tt.ReuseBytes / float64(c.LineBytes)
	if tt.Bytes > llcBytes {
		// Streaming working set: reuse beyond LLC capacity also misses.
		spill := (tt.Bytes - llcBytes) / tt.Bytes
		memBytes += tt.ReuseBytes * spill
		llcHits *= 1 - spill
	}
	llcMisses := memBytes / float64(c.LineBytes)

	// Timing: compute-bound vs bandwidth-bound vs latency-bound.
	computeCycles := instructions / (threads * c.IPCPeak)
	memCycles := memBytes / (c.MemBWGBps / c.ClockGHz)
	latencyCycles := llcMisses * float64(c.MemLatency) / (threads * 10) // MLP ≈ 10
	cycles := math.Max(computeCycles, math.Max(memCycles, latencyCycles))
	cycles += 0.08 * (computeCycles + memCycles + latencyCycles - cycles)
	timeMS := cycles / (c.ClockGHz * 1e9) * 1e3

	utilization := computeCycles / cycles * threads / float64(c.Cores)
	power := c.IdleWatts + c.DynWattsPeak*math.Min(1, utilization+0.3*memCycles/cycles)

	measured := timeMS
	if p.sig > 0 {
		measured *= math.Exp(p.sig * p.rng.NormFloat64())
		power *= math.Exp(p.sig * p.rng.NormFloat64())
	}

	ipc := instructions / cycles / threads
	metrics := map[string]float64{
		"instructions":      instructions,
		"cycles":            cycles,
		"ipc":               ipc,
		"simd_ops":          tt.VectorOps,
		"llc_references":    llcHits + llcMisses,
		"llc_misses":        llcMisses,
		"llc_miss_rate":     llcMisses / math.Max(1, llcHits+llcMisses),
		"branches":          tt.Branches,
		"branch_misses":     tt.BranchMisses,
		"mem_read_bytes":    memBytes,
		"mem_bandwidth_gbs": memBytes / (measured / 1e3) / 1e9,
		"threads":           threads,
		"cpu_utilization":   utilization,
	}

	return &profiler.Profile{
		Workload:        w.Name(),
		Device:          c.Name,
		Characteristics: w.Characteristics(),
		Metrics:         metrics,
		TimeMS:          measured,
		ModelTimeMS:     timeMS,
		PowerW:          power,
		EnergyMJ:        power * timeMS,
		Launches:        1,
		Bottlenecks:     map[string]int{bottleneckOf(computeCycles, memCycles, latencyCycles): 1},
	}, nil
}

func bottleneckOf(compute, mem, latency float64) string {
	switch {
	case compute >= mem && compute >= latency:
		return "compute"
	case mem >= latency:
		return "bandwidth"
	default:
		return "latency"
	}
}
