package cpusim

import (
	"testing"

	"blackforest/internal/core"
	"blackforest/internal/forest"
	"blackforest/internal/profiler"
)

func TestLookupCPU(t *testing.T) {
	c, err := LookupCPU("XeonE5")
	if err != nil {
		t.Fatal(err)
	}
	if c.Cores != 16 || c.SIMDWidth != 8 {
		t.Fatalf("XeonE5 model wrong: %+v", c)
	}
	if _, err := LookupCPU("M4Max"); err == nil {
		t.Fatal("unknown CPU accepted")
	}
	c.Cores = 1
	c2, _ := LookupCPU("XeonE5")
	if c2.Cores != 16 {
		t.Fatal("registry mutated")
	}
	if len(CPUNames()) != 2 {
		t.Fatalf("CPUs: %v", CPUNames())
	}
}

func TestCPUProfileBasics(t *testing.T) {
	cpu, _ := LookupCPU("XeonE5")
	p := NewProfiler(cpu, -1, 1)
	prof, err := p.Run(&CPUMatMul{N: 512})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Device != "XeonE5" || prof.TimeMS <= 0 {
		t.Fatalf("profile wrong: %+v", prof)
	}
	if prof.Metrics["instructions"] <= 0 || prof.Metrics["llc_misses"] <= 0 {
		t.Fatal("counters missing")
	}
	if prof.Metrics["ipc"] > cpu.IPCPeak {
		t.Fatalf("ipc %v exceeds peak %v", prof.Metrics["ipc"], cpu.IPCPeak)
	}
	if prof.PowerW < cpu.IdleWatts || prof.PowerW > cpu.IdleWatts+cpu.DynWattsPeak {
		t.Fatalf("power %v implausible", prof.PowerW)
	}
}

func TestCPUTimeScaling(t *testing.T) {
	cpu, _ := LookupCPU("XeonE5")
	p := NewProfiler(cpu, -1, 1)
	t1, _ := p.Run(&CPUMatMul{N: 256})
	t2, _ := p.Run(&CPUMatMul{N: 512})
	// O(n³): doubling n must cost clearly more than 4x.
	if t2.TimeMS < 4*t1.TimeMS {
		t.Fatalf("matmul scaling wrong: %v → %v", t1.TimeMS, t2.TimeMS)
	}
	// More threads must help the reduction.
	one, _ := p.Run(&CPUReduction{N: 1 << 24, Threads: 1})
	all, _ := p.Run(&CPUReduction{N: 1 << 24})
	if all.TimeMS >= one.TimeMS {
		t.Fatalf("parallelism did not help: %v vs %v", all.TimeMS, one.TimeMS)
	}
}

func TestCPUFasterChipWins(t *testing.T) {
	xeon, _ := LookupCPU("XeonE5")
	i7, _ := LookupCPU("CoreI7")
	px := NewProfiler(xeon, -1, 1)
	pi := NewProfiler(i7, -1, 1)
	a, _ := px.Run(&CPUMatMul{N: 1024})
	b, _ := pi.Run(&CPUMatMul{N: 1024})
	if a.TimeMS >= b.TimeMS {
		t.Fatalf("16-core Xeon (%vms) should beat 4-core i7 (%vms) on matmul", a.TimeMS, b.TimeMS)
	}
}

// TestBlackForestOnCPU proves the §7 claim: the unchanged pipeline models
// CPU counter data.
func TestBlackForestOnCPU(t *testing.T) {
	cpu, _ := LookupCPU("XeonE5")
	p := NewProfiler(cpu, 0, 7)
	var profiles []*profiler.Profile
	for r := 0; r < 3; r++ {
		for n := 64; n <= 1024; n *= 2 {
			prof, err := p.Run(&CPUMatMul{N: n})
			if err != nil {
				t.Fatal(err)
			}
			profiles = append(profiles, prof)
		}
	}
	frame, err := profiler.ToFrame(profiles)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Forest = forest.Config{NTrees: 100}
	cfg.Seed = 3
	a, err := core.Analyze(frame.DropConstantColumns("time_ms", "power_w"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.VarExplained < 0.7 {
		t.Fatalf("BF on CPU data: %%var explained %.2f", a.VarExplained)
	}
	// The problem scaler must work on CPU data too.
	ps, err := core.NewProblemScaler(a, 5, core.AutoModel)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := ps.PredictTime(map[string]float64{"size": 768})
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 {
		t.Fatalf("predicted %v", pred)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(&CPUReduction{N: 0}); err == nil {
		t.Fatal("zero-size reduction accepted")
	}
	if err := Validate(&CPUMatMul{N: 64}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(&CPUNeedlemanWunsch{SeqLen: -1}); err == nil {
		t.Fatal("negative length accepted")
	}
}
