package cpusim

import "fmt"

// CPUReduction is the multicore float32 sum reduction: each thread reduces
// a chunk with SIMD, then a log-tree combine.
type CPUReduction struct {
	N       int
	Threads int // 0 = all cores
}

// Name implements Workload.
func (r *CPUReduction) Name() string { return "cpu_reduce" }

// Characteristics implements Workload.
func (r *CPUReduction) Characteristics() map[string]float64 {
	return map[string]float64{"size": float64(r.N)}
}

// Totals implements Workload.
func (r *CPUReduction) Totals(c *CPU) Totals {
	n := float64(r.N)
	threads := r.Threads
	if threads <= 0 {
		threads = c.Cores
	}
	return Totals{
		VectorOps:    n,                                  // one add per element
		ScalarOps:    n/8 + float64(threads*c.SIMDWidth), // loop control + final combine
		Bytes:        4 * n,                              // streamed once
		Branches:     n / float64(c.SIMDWidth) / 4,       // unrolled by 4
		BranchMisses: float64(threads),
		Threads:      threads,
	}
}

// CPUMatMul is the blocked (cache-tiled) float32 matrix multiply.
type CPUMatMul struct {
	N       int
	Threads int
}

// Name implements Workload.
func (m *CPUMatMul) Name() string { return "cpu_matmul" }

// Characteristics implements Workload.
func (m *CPUMatMul) Characteristics() map[string]float64 {
	return map[string]float64{"size": float64(m.N)}
}

// Totals implements Workload.
func (m *CPUMatMul) Totals(c *CPU) Totals {
	n := float64(m.N)
	threads := m.Threads
	if threads <= 0 {
		threads = c.Cores
	}
	flops := 2 * n * n * n
	return Totals{
		VectorOps:  flops,
		ScalarOps:  flops / 16, // index arithmetic amortized by tiling
		Bytes:      3 * 4 * n * n,
		ReuseBytes: 4 * n * n * (n / 64), // tile reuse traffic absorbed by caches
		Branches:   flops / float64(c.SIMDWidth) / 8,
		Threads:    threads,
	}
}

// CPUNeedlemanWunsch is the wavefront-parallel DP fill; parallelism is
// limited by the anti-diagonal length.
type CPUNeedlemanWunsch struct {
	SeqLen  int
	Threads int
}

// Name implements Workload.
func (nw *CPUNeedlemanWunsch) Name() string { return "cpu_needle" }

// Characteristics implements Workload.
func (nw *CPUNeedlemanWunsch) Characteristics() map[string]float64 {
	return map[string]float64{"size": float64(nw.SeqLen)}
}

// Totals implements Workload.
func (nw *CPUNeedlemanWunsch) Totals(c *CPU) Totals {
	n := float64(nw.SeqLen)
	threads := nw.Threads
	if threads <= 0 {
		threads = c.Cores
	}
	cells := n * n
	return Totals{
		ScalarOps:    8 * cells, // max3 + adds + index math; DP resists SIMD
		Bytes:        4 * cells,
		ReuseBytes:   8 * cells,
		Branches:     2 * cells,
		BranchMisses: cells / 8, // data-dependent max choices
		Threads:      threads,
	}
}

// Validate checks a workload's parameters before profiling.
func Validate(w Workload) error {
	switch v := w.(type) {
	case *CPUReduction:
		if v.N < 1 {
			return fmt.Errorf("cpusim: reduction size %d must be positive", v.N)
		}
	case *CPUMatMul:
		if v.N < 1 {
			return fmt.Errorf("cpusim: matmul size %d must be positive", v.N)
		}
	case *CPUNeedlemanWunsch:
		if v.SeqLen < 1 {
			return fmt.Errorf("cpusim: sequence length %d must be positive", v.SeqLen)
		}
	}
	return nil
}
