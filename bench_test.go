// Benchmarks regenerating every table and figure of the paper, plus the
// ablation studies called out in DESIGN.md and microbenchmarks of the
// performance-critical substrates.
//
// Figure benchmarks run the Quick experiment scale so `go test -bench=.`
// stays tractable; `cmd/bfbench -scale full` reproduces the paper-scale
// sweeps. Reported metrics (R², %var explained) matter more than ns/op
// for the figure benchmarks.
package blackforest_test

import (
	"io"
	"testing"

	"blackforest"
	"blackforest/internal/experiments"
	"blackforest/internal/forest"
	"blackforest/internal/stats"
)

func benchOpts(seed uint64) experiments.Options {
	return experiments.Options{Scale: experiments.Quick, Seed: seed}
}

// --- Tables ---

func BenchmarkTable1Counters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RenderTable1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Devices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RenderTable2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 2–4: reduction bottleneck analyses ---

func benchReduction(b *testing.B, variant int) {
	b.Helper()
	var varExpl float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunReductionAnalysis(variant, benchOpts(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		varExpl += res.Analysis.VarExplained
	}
	b.ReportMetric(100*varExpl/float64(b.N), "%var")
}

func BenchmarkFig2Reduce1(b *testing.B) { benchReduction(b, 1) }
func BenchmarkFig3Reduce2(b *testing.B) { benchReduction(b, 2) }
func BenchmarkFig4Reduce6(b *testing.B) { benchReduction(b, 6) }

// --- Figures 5–6: problem-scaling prediction ---

func BenchmarkFig5MatMul(b *testing.B) {
	// Median absolute percentage error is robust to the tiny quick-scale
	// test splits (the related work the paper compares against quotes the
	// same measure: "median absolute error of 13.1%").
	var mape float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMatMulPrediction(benchOpts(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		mape += stats.MedianAbsPctError(res.Eval.Predicted, res.Eval.Actual)
	}
	b.ReportMetric(100*mape/float64(b.N), "medAPE%")
}

func BenchmarkFig6NW(b *testing.B) {
	var mape float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNWPrediction(benchOpts(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		mape += stats.MedianAbsPctError(res.Eval.Predicted, res.Eval.Actual)
	}
	b.ReportMetric(100*mape/float64(b.N), "medAPE%")
}

// --- Figures 7–8: hardware scaling ---

func BenchmarkFig7HWScalingMM(b *testing.B) {
	var r2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHWScalingMM(benchOpts(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		r2 += res.Result.Straightforward.R2
	}
	b.ReportMetric(r2/float64(b.N), "predR2")
}

func BenchmarkFig8HWScalingNW(b *testing.B) {
	var r2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHWScalingNW(benchOpts(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		r2 += res.Result.Mixed.R2
	}
	b.ReportMetric(r2/float64(b.N), "mixedR2")
}

// --- Ablations (DESIGN.md) ---

// benchFrame collects one small reduce2 frame reused by the ablations.
func benchFrame(b *testing.B) *blackforest.Frame {
	b.Helper()
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		b.Fatal(err)
	}
	var runs []blackforest.Workload
	seed := uint64(1)
	for _, bs := range []int{128, 256, 512} {
		for n := 1 << 12; n <= 1<<20; n *= 2 {
			seed++
			runs = append(runs, &blackforest.Reduction{Variant: 2, N: n, BlockSize: bs, Seed: seed})
		}
	}
	frame, err := blackforest.Collect(dev, runs, blackforest.CollectOptions{MaxSimBlocks: 8})
	if err != nil {
		b.Fatal(err)
	}
	return frame
}

// BenchmarkAblationMtry compares mtry = p/3 (regression default), √p, and
// p (bagging) on the same data.
func BenchmarkAblationMtry(b *testing.B) {
	frame := benchFrame(b)
	p := 0
	for _, n := range frame.Names() {
		if n != blackforest.ResponseColumn && n != blackforest.PowerColumn {
			p++
		}
	}
	for _, mtry := range []struct {
		name string
		m    int
	}{
		{"p3", p / 3}, {"sqrtp", isqrt(p)}, {"p", p},
	} {
		b.Run(mtry.name, func(b *testing.B) {
			var varExpl float64
			for i := 0; i < b.N; i++ {
				cfg := blackforest.DefaultConfig()
				cfg.Forest = forest.Config{NTrees: 150, MTry: mtry.m}
				cfg.Seed = uint64(i + 1)
				a, err := blackforest.Analyze(frame, cfg)
				if err != nil {
					b.Fatal(err)
				}
				varExpl = a.VarExplained
			}
			b.ReportMetric(100*varExpl, "%var")
		})
	}
}

// BenchmarkAblationNTree sweeps forest size against OOB quality.
func BenchmarkAblationNTree(b *testing.B) {
	frame := benchFrame(b)
	for _, ntree := range []int{10, 50, 150, 500} {
		b.Run(itoa(ntree), func(b *testing.B) {
			var oob float64
			for i := 0; i < b.N; i++ {
				cfg := blackforest.DefaultConfig()
				cfg.Forest = forest.Config{NTrees: ntree}
				cfg.Seed = uint64(i + 1)
				a, err := blackforest.Analyze(frame, cfg)
				if err != nil {
					b.Fatal(err)
				}
				oob = a.VarExplained
			}
			b.ReportMetric(100*oob, "%var")
		})
	}
}

// BenchmarkAblationTrainSize validates the paper's claim that <100 samples
// suffice by shrinking the training fraction.
func BenchmarkAblationTrainSize(b *testing.B) {
	frame := benchFrame(b)
	for _, frac := range []struct {
		name string
		f    float64
	}{
		{"40pct", 0.4}, {"60pct", 0.6}, {"80pct", 0.8},
	} {
		b.Run(frac.name, func(b *testing.B) {
			var r2 float64
			for i := 0; i < b.N; i++ {
				cfg := blackforest.DefaultConfig()
				cfg.Forest = forest.Config{NTrees: 150}
				cfg.TrainFrac = frac.f
				cfg.Seed = uint64(i + 1)
				a, err := blackforest.Analyze(frame, cfg)
				if err != nil {
					b.Fatal(err)
				}
				r2 = a.TestR2
			}
			b.ReportMetric(r2, "testR2")
		})
	}
}

// BenchmarkAblationTopK measures how much predictive power the reduced
// model keeps as k shrinks (the paper retains 6–8).
func BenchmarkAblationTopK(b *testing.B) {
	frame := benchFrame(b)
	cfg := blackforest.DefaultConfig()
	cfg.Forest = forest.Config{NTrees: 150}
	cfg.Seed = 1
	a, err := blackforest.Analyze(frame, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{2, 4, 7, 12} {
		b.Run(itoa(k), func(b *testing.B) {
			var r2 float64
			for i := 0; i < b.N; i++ {
				reduced, _, err := a.Reduce(k, 0)
				if err != nil {
					b.Fatal(err)
				}
				r2 = reduced.TestR2
			}
			b.ReportMetric(r2, "testR2")
		})
	}
}

// BenchmarkAblationCounterModel compares GLM against MARS counter models
// on the same analysis.
func BenchmarkAblationCounterModel(b *testing.B) {
	frame := benchFrame(b)
	cfg := blackforest.DefaultConfig()
	cfg.Forest = forest.Config{NTrees: 150}
	cfg.Seed = 1
	a, err := blackforest.Analyze(frame, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []struct {
		name string
		k    blackforest.ModelKind
	}{
		{"glm", blackforest.GLMModel}, {"mars", blackforest.MARSModel},
	} {
		b.Run(kind.name, func(b *testing.B) {
			var avgR2 float64
			for i := 0; i < b.N; i++ {
				ps, err := blackforest.NewProblemScaler(a, cfg.TopK, kind.k)
				if err != nil {
					b.Fatal(err)
				}
				avgR2 = ps.AverageCounterR2()
			}
			b.ReportMetric(avgR2, "counterR2")
		})
	}
}

// BenchmarkAblationSampling measures counter fidelity (and speed) versus
// the per-launch block-sampling cap.
func BenchmarkAblationSampling(b *testing.B) {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		b.Fatal(err)
	}
	fullProfiler := blackforest.NewProfiler(dev, blackforest.ProfilerOptions{NoiseSigma: -1})
	ref, err := fullProfiler.Run(&blackforest.MatMul{N: 256, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	refLoads := ref.Metrics["gld_request"]
	for _, cap := range []int{4, 16, 64} {
		b.Run(itoa(cap), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				p := blackforest.NewProfiler(dev, blackforest.ProfilerOptions{MaxSimBlocks: cap, NoiseSigma: -1})
				prof, err := p.Run(&blackforest.MatMul{N: 256, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				rel = prof.Metrics["gld_request"] / refLoads
			}
			b.ReportMetric(rel, "gld_ratio")
		})
	}
}

// BenchmarkExtPowerMatMul runs the §7 power-response extension.
func BenchmarkExtPowerMatMul(b *testing.B) {
	var r2 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPowerPrediction(benchOpts(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		r2 += res.Eval.R2
	}
	b.ReportMetric(r2/float64(b.N), "powerR2")
}

// BenchmarkAblationPCAFirst compares the standard pipeline against the
// §7 PCA-first variant on the same frame.
func BenchmarkAblationPCAFirst(b *testing.B) {
	frame := benchFrame(b)
	cfg := blackforest.DefaultConfig()
	cfg.Forest = forest.Config{NTrees: 150}
	b.Run("raw", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			cfg.Seed = uint64(i + 1)
			a, err := blackforest.Analyze(frame, cfg)
			if err != nil {
				b.Fatal(err)
			}
			v = a.VarExplained
		}
		b.ReportMetric(100*v, "%var")
	})
	b.Run("pcafirst", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			cfg.Seed = uint64(i + 1)
			a, err := blackforest.AnalyzePCAFirst(frame, cfg)
			if err != nil {
				b.Fatal(err)
			}
			v = a.VarExplained
		}
		b.ReportMetric(100*v, "%var")
	})
}

// BenchmarkBaselineComparison pits the forest against the Stargazer-style
// stepwise linear regression (the paper's related-work baseline) on the
// same frame and reports held-out R² for both — quantifying the §1 claim
// that RF outperforms traditional regression on counter data.
func BenchmarkBaselineComparison(b *testing.B) {
	frame := benchFrame(b)
	preds := make([]string, 0, frame.NumCols())
	for _, n := range frame.Names() {
		if n != blackforest.ResponseColumn && n != blackforest.PowerColumn {
			preds = append(preds, n)
		}
	}
	b.Run("forest", func(b *testing.B) {
		var r2 float64
		for i := 0; i < b.N; i++ {
			cfg := blackforest.DefaultConfig()
			cfg.Forest = forest.Config{NTrees: 150}
			cfg.Seed = 1
			a, err := blackforest.Analyze(frame, cfg)
			if err != nil {
				b.Fatal(err)
			}
			r2 = a.TestR2
		}
		b.ReportMetric(r2, "testR2")
	})
	b.Run("stepwise", func(b *testing.B) {
		// Same 80:20 split as the forest run (same seed stream).
		rng := stats.NewRNG(1 ^ 0x5b117)
		train, test, err := frame.Split(rng, 0.8)
		if err != nil {
			b.Fatal(err)
		}
		xTrain, _ := train.Matrix(preds)
		yTrain, _ := train.Column(blackforest.ResponseColumn)
		xTest, _ := test.Matrix(preds)
		yTest, _ := test.Column(blackforest.ResponseColumn)
		var r2 float64
		for i := 0; i < b.N; i++ {
			m, err := blackforest.FitStepwise(xTrain, yTrain, preds, blackforest.StepwiseConfig{})
			if err != nil {
				b.Fatal(err)
			}
			r2 = stats.RSquared(m.PredictAll(xTest), yTest)
		}
		b.ReportMetric(r2, "testR2")
	})
}

// BenchmarkCollectParallel measures the bounded worker pool on the Fig-6
// NW sweep (64 runs): "seq" collects with Workers=1, "par" with the
// default worker count. Both produce bit-identical frames (verified by
// TestCollectWorkersBitIdentical); the ratio of their ns/op is the
// parallel speedup.
func BenchmarkCollectParallel(b *testing.B) {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		b.Fatal(err)
	}
	// Workload construction stays outside the measured loop: the runs are
	// stateless descriptors (each Collect re-plans them), so rebuilding
	// them per iteration only added noise to the collection timing.
	var runs []blackforest.Workload
	seed := uint64(1)
	for n := 64; n <= 4096; n += 64 {
		seed++
		runs = append(runs, &blackforest.NeedlemanWunsch{SeqLen: n, Seed: seed})
	}
	for _, c := range []struct {
		name    string
		workers int
	}{
		{"seq", 1}, {"par", 0},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := blackforest.CollectOptions{MaxSimBlocks: 8, Workers: c.workers}
				if _, err := blackforest.Collect(dev, runs, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Substrate microbenchmarks ---

func BenchmarkForestFit(b *testing.B) {
	rng := stats.NewRNG(1)
	n, p := 100, 20
	x := make([][]float64, n)
	y := make([]float64, n)
	names := make([]string, p)
	for j := range names {
		names[j] = "v" + itoa(j)
	}
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = row[0]*10 + row[1]*5 + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Fit(x, y, names, forest.Config{NTrees: 100, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPredictForest fits the shared 500-tree forest the predict
// microbenchmarks walk, plus a query batch drawn from the same distribution.
func benchPredictForest(b *testing.B) (*forest.Forest, [][]float64) {
	b.Helper()
	rng := stats.NewRNG(2)
	n, p := 100, 20
	x := make([][]float64, n)
	y := make([]float64, n)
	names := make([]string, p)
	for j := range names {
		names[j] = "v" + itoa(j)
	}
	for i := range x {
		row := make([]float64, p)
		for j := range row {
			row[j] = rng.Float64()
		}
		x[i] = row
		y[i] = row[0] * 10
	}
	f, err := forest.Fit(x, y, names, forest.Config{NTrees: 500, Seed: 1, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 1024)
	for i := range queries {
		q := make([]float64, p)
		for j := range q {
			q[j] = rng.Float64()
		}
		queries[i] = q
	}
	return f, queries
}

// BenchmarkForestPredict walks the flat compiled engine (the serving path).
func BenchmarkForestPredict(b *testing.B) {
	f, queries := benchPredictForest(b)
	probe := queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(probe)
	}
}

// BenchmarkForestPredictPointer walks the frozen pointer-linked reference —
// the baseline the flat engine's ns/op is compared against.
func BenchmarkForestPredictPointer(b *testing.B) {
	f, queries := benchPredictForest(b)
	probe := queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictPointer(probe)
	}
}

// BenchmarkPredictAllFlat runs the tree-major batched mode over 1024 rows
// per iteration (single-threaded, so the metric tracks the engine, not the
// worker pool).
func BenchmarkPredictAllFlat(b *testing.B) {
	f, queries := benchPredictForest(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictAll(queries)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(queries)), "ns/row")
}

func BenchmarkSimulatorMatMul(b *testing.B) {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		b.Fatal(err)
	}
	p := blackforest.NewProfiler(dev, blackforest.ProfilerOptions{MaxSimBlocks: 16, NoiseSigma: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(&blackforest.MatMul{N: 256, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorReduce6(b *testing.B) {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		b.Fatal(err)
	}
	p := blackforest.NewProfiler(dev, blackforest.ProfilerOptions{MaxSimBlocks: 16, NoiseSigma: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(&blackforest.Reduction{Variant: 6, N: 1 << 20, BlockSize: 256, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorNW(b *testing.B) {
	dev, err := blackforest.LookupDevice("GTX580")
	if err != nil {
		b.Fatal(err)
	}
	p := blackforest.NewProfiler(dev, blackforest.ProfilerOptions{MaxSimBlocks: 16, NoiseSigma: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(&blackforest.NeedlemanWunsch{SeqLen: 512, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- tiny helpers ---

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
