module blackforest

go 1.22
